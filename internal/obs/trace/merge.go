package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// This file implements fleet-wide trace correlation: a Bundle groups
// the per-process dumps of one distributed run (coordinator plus every
// peer's node-side recorder) together with a clock-offset estimate per
// peer, and Merge aligns them onto the coordinator's clock, pairs the
// frame_send/frame_recv wire edges stamped under shared PairIDs, and
// attributes each BFS level's wall time to compute / serialize / wire /
// steal / stall buckets.

// BundleSchema identifies the bundle JSON envelope.
const BundleSchema = "gpotrace-bundle/v1"

// Bundle is the collected trace of one distributed run: one entry per
// recorder that observed it. Served by gpod's GET /v1/runs/{id}/trace
// and consumed by `gpotrace -merge`.
type Bundle struct {
	Schema string       `json:"schema"`
	RunID  string       `json:"run_id,omitempty"`
	Peers  []BundlePeer `json:"peers"`
}

// BundlePeer is one recorder's slice of the run. OffsetNS is the
// RPC-midpoint estimate of (peer clock − coordinator clock) measured
// while collecting the dump; RTTNS is the collection round trip that
// bounds the estimate's error.
type BundlePeer struct {
	Addr        string `json:"addr"`
	Coordinator bool   `json:"coordinator,omitempty"`
	OffsetNS    int64  `json:"offset_ns,omitempty"`
	RTTNS       int64  `json:"rtt_ns,omitempty"`
	Dump        *Dump  `json:"dump"`
}

// WriteBundle writes the bundle as a single JSON object.
func WriteBundle(w io.Writer, b *Bundle) error {
	b.Schema = BundleSchema
	return json.NewEncoder(w).Encode(b)
}

// ReadBundle parses a bundle, refusing unknown schemas, dumps newer
// than FormatVersion, and bundles whose dumps disagree on version
// (ErrBadHeader / ErrVersionMismatch / ErrMixedVersions).
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadHeader, b.Schema, BundleSchema)
	}
	version := 0
	for i := range b.Peers {
		d := b.Peers[i].Dump
		if d == nil {
			return nil, fmt.Errorf("%w: peer %q has no dump", ErrBadHeader, b.Peers[i].Addr)
		}
		v := versionOr1(d.Version)
		if v > FormatVersion {
			return nil, fmt.Errorf("%w: peer %q dump is v%d, reader understands ≤ v%d",
				ErrVersionMismatch, b.Peers[i].Addr, v, FormatVersion)
		}
		if version == 0 {
			version = v
		} else if v != version {
			return nil, fmt.Errorf("%w: peer %q dump is v%d, earlier peers are v%d",
				ErrMixedVersions, b.Peers[i].Addr, v, version)
		}
	}
	return &b, nil
}

// ReadBundleFile parses a bundle file written by WriteBundle.
func ReadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}

// Merged is the aligned view of a bundle: every peer placed on the
// coordinator's clock, wire edges paired across dumps, and per-level
// attribution totals.
type Merged struct {
	RunID  string
	Peers  []MergedPeer
	States int64 // KindState events across all dumps (fleet state count)
	Edges  []WireEdge
	Levels []LevelStat
}

// MergedPeer is one bundle entry after alignment. OffsetNS is the
// causally clamped offset actually applied (peer clock − coordinator
// clock); Expanded/ExpandNS feed the per-peer throughput line.
type MergedPeer struct {
	Addr        string
	Coordinator bool
	OffsetNS    int64
	Expanded    int64
	ExpandNS    int64
}

// WireEdge is one matched frame transfer on the coordinator clock.
// From/To index Merged.Peers. EndNS-StartNS can only be negative if
// the clamped offsets still violate causality (no coordinator-involving
// constraint existed for the sending peer) — the attribution buckets
// clamp at zero, and the skew tests pin that constrained edges never
// go negative.
type WireEdge struct {
	Pair    int64
	Level   int64
	RPC     int
	From    int
	To      int
	StartNS int64
	EndNS   int64
	Bytes   int64
}

// LevelStat attributes one BFS level's wall time. ComputeNS sums peer
// expand phases (can exceed WallNS — peers run in parallel), StallNS
// is the spread between the first and last expand reply reaching the
// coordinator, and SlowestPeer names the peer whose reply arrived last.
type LevelStat struct {
	Level       int64
	Size        int64
	WallNS      int64
	ComputeNS   int64
	SerializeNS int64
	WireNS      int64
	StealNS     int64
	Steals      int64
	Stolen      int64
	StallNS     int64
	SlowestPeer string
}

// frameEv is one wire-edge half, on the owning peer's own clock.
type frameEv struct {
	peer int
	send bool
	ts   int64 // absolute ns, own clock
	arg1 int64
}

// phaseSpan is one closed Begin/End pair.
type phaseSpan struct {
	peer  int
	name  string
	level int64 // Arg1 of the begin event
	dur   int64
}

// Merge aligns a bundle onto the coordinator's clock. Each peer's
// RPC-midpoint offset estimate is clamped into the causal interval
// implied by its matched wire edges with the coordinator (a frame
// cannot arrive before it was sent in either direction), so estimation
// error bounded by the RPC round trip never yields negative-duration
// edges.
func Merge(b *Bundle) (*Merged, error) {
	if len(b.Peers) == 0 {
		return nil, fmt.Errorf("%w: bundle has no peers", ErrBadHeader)
	}
	coord := 0
	for i := range b.Peers {
		if b.Peers[i].Coordinator {
			coord = i
			break
		}
	}
	m := &Merged{RunID: b.RunID}
	bases := make([]int64, len(b.Peers))
	for i := range b.Peers {
		bases[i] = metaInt(b.Peers[i].Dump, "base_unix_ns")
		m.Peers = append(m.Peers, MergedPeer{
			Addr:        b.Peers[i].Addr,
			Coordinator: i == coord,
			OffsetNS:    b.Peers[i].OffsetNS,
		})
	}
	m.Peers[coord].OffsetNS = 0

	// Collect frame halves by pair id and count states.
	pairs := map[int64][]frameEv{}
	for pi := range b.Peers {
		for _, tk := range b.Peers[pi].Dump.Tracks {
			for _, ev := range tk.Events {
				switch ev.Kind {
				case KindState:
					m.States++
				case KindFrameSend, KindFrameRecv:
					pairs[ev.Arg0] = append(pairs[ev.Arg0], frameEv{
						peer: pi,
						send: ev.Kind == KindFrameSend,
						ts:   bases[pi] + ev.TS,
						arg1: ev.Arg1,
					})
				}
			}
		}
	}

	// Causal clamp: for every non-coordinator peer, bound its offset by
	// the matched edges it shares with the coordinator.
	for pi := range b.Peers {
		if pi == coord {
			continue
		}
		lo, hi := int64(-1<<62), int64(1<<62)
		for _, evs := range pairs {
			for _, e := range matchEdges(evs, pi, coord) {
				// peer → coordinator: sendOwn − o ≤ recvCoord
				if v := e.sendTS - e.recvTS; v > lo {
					lo = v
				}
			}
			for _, e := range matchEdges(evs, coord, pi) {
				// coordinator → peer: recvOwn − o ≥ sendCoord
				if v := e.recvTS - e.sendTS; v < hi {
					hi = v
				}
			}
		}
		o := m.Peers[pi].OffsetNS
		if lo <= hi {
			if o < lo {
				o = lo
			}
			if o > hi {
				o = hi
			}
		} else {
			o = (lo + hi) / 2
		}
		m.Peers[pi].OffsetNS = o
	}

	// Build aligned edges.
	pids := make([]int64, 0, len(pairs))
	for pid := range pairs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		evs := pairs[pid]
		for a := 0; a < len(b.Peers); a++ {
			for bb := 0; bb < len(b.Peers); bb++ {
				if a == bb {
					continue
				}
				for _, e := range matchEdges(evs, a, bb) {
					m.Edges = append(m.Edges, WireEdge{
						Pair:    pid,
						Level:   PairLevel(pid),
						RPC:     PairRPC(pid),
						From:    a,
						To:      bb,
						StartNS: e.sendTS - m.Peers[a].OffsetNS,
						EndNS:   e.recvTS - m.Peers[bb].OffsetNS,
						Bytes:   e.bytes,
					})
				}
			}
		}
	}

	m.buildAttribution(b, bases, coord)
	return m, nil
}

// matchedEdge is one (send on peer a, recv on peer b) pairing, own
// clocks.
type matchedEdge struct {
	sendTS, recvTS, bytes int64
}

// matchEdges zips peer a's sends with peer b's recvs in timestamp
// order. Repeated exchanges under one pair id (chunked intern posts)
// pair k-th send with k-th recv — both sides emit sequentially.
func matchEdges(evs []frameEv, a, b int) []matchedEdge {
	var sends, recvs []frameEv
	for _, e := range evs {
		if e.peer == a && e.send {
			sends = append(sends, e)
		} else if e.peer == b && !e.send {
			recvs = append(recvs, e)
		}
	}
	sort.Slice(sends, func(i, j int) bool { return sends[i].ts < sends[j].ts })
	sort.Slice(recvs, func(i, j int) bool { return recvs[i].ts < recvs[j].ts })
	n := len(sends)
	if len(recvs) < n {
		n = len(recvs)
	}
	out := make([]matchedEdge, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, matchedEdge{sendTS: sends[i].ts, recvTS: recvs[i].ts, bytes: sends[i].arg1})
	}
	return out
}

// buildAttribution fills Levels and per-peer throughput from the
// aligned dumps.
func (m *Merged) buildAttribution(b *Bundle, bases []int64, coord int) {
	// Closed phase spans across all dumps, and per-peer expand totals.
	var spans []phaseSpan
	type open struct {
		name  string
		level int64
		ts    int64
	}
	for pi := range b.Peers {
		d := b.Peers[pi].Dump
		for _, tk := range d.Tracks {
			var stack []open
			for _, ev := range tk.Events {
				switch ev.Kind {
				case KindPhaseBegin:
					stack = append(stack, open{name: d.lookup(ev.Arg0), level: ev.Arg1, ts: ev.TS})
				case KindPhaseEnd:
					name := d.lookup(ev.Arg0)
					for len(stack) > 0 {
						top := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						if top.name == name {
							spans = append(spans, phaseSpan{
								peer: pi, name: name, level: top.level, dur: ev.TS - top.ts,
							})
							break
						}
					}
				case KindExpand:
					m.Peers[pi].Expanded += ev.Arg0
				}
			}
		}
	}
	for _, sp := range spans {
		if sp.name == "expand" {
			m.Peers[sp.peer].ExpandNS += sp.dur
		}
	}

	// Level boundaries from the coordinator's KindLevel events.
	type levelMark struct {
		level, size, ts int64
	}
	var marks []levelMark
	var lastTS int64
	cd := b.Peers[coord].Dump
	for _, tk := range cd.Tracks {
		for _, ev := range tk.Events {
			if ev.TS > lastTS {
				lastTS = ev.TS
			}
			if ev.Kind == KindLevel {
				marks = append(marks, levelMark{level: ev.Arg0, size: ev.Arg1, ts: ev.TS})
			}
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i].ts < marks[j].ts })
	if len(marks) == 0 {
		return
	}
	idx := map[int64]int{}
	for i, mk := range marks {
		end := lastTS
		if i+1 < len(marks) {
			end = marks[i+1].ts
		}
		idx[mk.level] = i
		m.Levels = append(m.Levels, LevelStat{Level: mk.level, Size: mk.size, WallNS: end - mk.ts})
	}
	for _, sp := range spans {
		li, ok := idx[sp.level]
		if !ok {
			continue
		}
		switch sp.name {
		case "expand":
			m.Levels[li].ComputeNS += sp.dur
		case "serialize":
			m.Levels[li].SerializeNS += sp.dur
		case "assign":
			m.Levels[li].StealNS += sp.dur
		}
	}
	// Steal events (coordinator).
	for _, tk := range cd.Tracks {
		for _, ev := range tk.Events {
			if ev.Kind == KindSteal {
				if li, ok := idx[ev.Arg0]; ok {
					m.Levels[li].Steals++
					m.Levels[li].Stolen += ev.Arg1
				}
			}
		}
	}
	// Wire totals and coordinator stall (spread of expand replies).
	type stallAcc struct {
		min, max int64
		n        int
		slowest  int
	}
	stalls := map[int64]*stallAcc{}
	for _, e := range m.Edges {
		li, ok := idx[e.Level]
		if !ok {
			continue
		}
		if d := e.EndNS - e.StartNS; d > 0 {
			m.Levels[li].WireNS += d
		}
		if e.RPC == RPCExpand && e.To == coord {
			acc := stalls[e.Level]
			if acc == nil {
				acc = &stallAcc{min: e.EndNS, max: e.EndNS, slowest: e.From}
				stalls[e.Level] = acc
			}
			if e.EndNS < acc.min {
				acc.min = e.EndNS
			}
			if e.EndNS > acc.max {
				acc.max = e.EndNS
				acc.slowest = e.From
			}
			acc.n++
		}
	}
	for lvl, acc := range stalls {
		if li, ok := idx[lvl]; ok && acc.n > 1 {
			m.Levels[li].StallNS = acc.max - acc.min
			m.Levels[li].SlowestPeer = m.Peers[acc.slowest].Addr
		}
	}
}

// metaInt parses an int64 metadata value (0 when absent or malformed).
func metaInt(d *Dump, key string) int64 {
	if d == nil || d.Meta == nil {
		return 0
	}
	v, _ := strconv.ParseInt(d.Meta[key], 10, 64)
	return v
}

// WriteChromeMerged writes the aligned bundle as one Chrome trace JSON
// with one process (track group) per peer, timestamps on the
// coordinator's clock relative to the earliest aligned event.
func WriteChromeMerged(w io.Writer, b *Bundle, m *Merged) error {
	bases := make([]int64, len(b.Peers))
	t0 := int64(1<<62 - 1)
	for i := range b.Peers {
		bases[i] = metaInt(b.Peers[i].Dump, "base_unix_ns")
		if start := bases[i] - m.Peers[i].OffsetNS; start < t0 {
			t0 = start
		}
	}
	f := chromeFile{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"run_id": m.RunID, "schema": "gpotrace-merged/v1"},
	}
	for pi := range b.Peers {
		d := b.Peers[pi].Dump
		pid := pi + 1
		pname := m.Peers[pi].Addr
		if m.Peers[pi].Coordinator {
			pname += " (coordinator)"
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": pname},
		})
		for ti, tk := range d.Tracks {
			tid := ti + 1
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": tk.Name},
			})
			for _, ev := range tk.Events {
				abs := bases[pi] + ev.TS - m.Peers[pi].OffsetNS - t0
				ce := chromeEvent{TS: float64(abs) / 1e3, PID: pid, TID: tid}
				switch ev.Kind {
				case KindPhaseBegin:
					ce.Ph, ce.Name = "B", d.lookup(ev.Arg0)
				case KindPhaseEnd:
					ce.Ph, ce.Name = "E", d.lookup(ev.Arg0)
				default:
					ce.Ph, ce.S = "i", "t"
					ce.Name = ev.Kind.String()
					ce.Args = map[string]any{
						"kind": ev.Kind.String(),
						"a0":   ev.Arg0,
						"a1":   ev.Arg1,
					}
					if internedArg0(ev.Kind) {
						ce.Args["name"] = d.lookup(ev.Arg0)
					}
				}
				f.TraceEvents = append(f.TraceEvents, ce)
			}
		}
	}
	return json.NewEncoder(w).Encode(&f)
}

// WriteText renders the merged view for terminals: the peer roster
// with applied offsets and throughput, then the per-level attribution
// table (percentages of level wall time; compute sums parallel peers
// and can exceed 100%).
func (m *Merged) WriteText(w io.Writer) {
	fmt.Fprintf(w, "run %s: %d peers\n", m.RunID, len(m.Peers))
	fmt.Fprintf(w, "fleet states: %d\n", m.States)
	for i, p := range m.Peers {
		role := ""
		if p.Coordinator {
			role = " (coordinator)"
		}
		fmt.Fprintf(w, "peer %d %s%s offset=%s", i, p.Addr, role, fmtNS(p.OffsetNS))
		if p.ExpandNS > 0 {
			rate := float64(p.Expanded) / (float64(p.ExpandNS) / 1e9)
			fmt.Fprintf(w, " expanded=%d states/s=%.0f", p.Expanded, rate)
		}
		fmt.Fprintln(w)
	}
	if len(m.Levels) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%5s %8s %10s %8s %8s %8s %8s %8s  %s\n",
		"level", "size", "wall", "compute", "serial", "wire", "steal", "stall", "slowest")
	for _, l := range m.Levels {
		pct := func(v int64) string {
			if l.WallNS <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(v)/float64(l.WallNS))
		}
		slowest := l.SlowestPeer
		if slowest == "" {
			slowest = "-"
		}
		fmt.Fprintf(w, "%5d %8d %10s %8s %8s %8s %8s %8s  %s\n",
			l.Level, l.Size, fmtNS(l.WallNS),
			pct(l.ComputeNS), pct(l.SerializeNS), pct(l.WireNS), pct(l.StealNS), pct(l.StallNS),
			slowest)
	}
}

// fmtNS renders a signed nanosecond duration compactly.
func fmtNS(ns int64) string {
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%s%.2fs", sign, float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%s%.1fms", sign, float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%s%.1fµs", sign, float64(ns)/1e3)
	}
	return fmt.Sprintf("%s%dns", sign, ns)
}
