package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Summary is what cmd/gpotrace prints: the run reconstructed from its
// events alone — state and firing counts, the hottest transitions,
// per-phase wall clock, discovery rate over time, and the abort tail if
// the run was cancelled.
type Summary struct {
	Meta        map[string]string
	Tracks      int
	Events      int
	Dropped     uint64
	SpanNS      int64 // last event TS − first event TS
	States      int
	Fires       int
	MultiFires  int
	Aborted     bool
	AbortReason string
	Top         []TransCount
	Phases      []PhaseWall
	Rate        []RateBucket
}

// TransCount is one row of the top-transitions table.
type TransCount struct {
	Name  string
	Count int
}

// PhaseWall is the summed wall clock of one named phase on one track.
type PhaseWall struct {
	Track  string
	Name   string
	WallNS int64
	Count  int // begin/end pairs summed
}

// RateBucket is the state-discovery rate over one slice of the run.
type RateBucket struct {
	StartNS int64
	States  int
}

// rateBuckets is how many slices Summarize cuts the run into.
const rateBuckets = 10

// Summarize reconstructs a Summary from a dump. topN bounds the
// top-transitions table (<=0 means 10).
func Summarize(d *Dump, topN int) *Summary {
	if topN <= 0 {
		topN = 10
	}
	d.sortTracksStable()
	s := &Summary{Meta: d.Meta, Tracks: len(d.Tracks)}

	minTS, maxTS := int64(0), int64(0)
	seenTS := false
	fires := map[int64]int{}
	for _, tk := range d.Tracks {
		s.Dropped += tk.Dropped
		s.Events += len(tk.Events)
		type open struct {
			name int64
			ts   int64
		}
		var stack []open
		phase := map[string]*PhaseWall{}
		var lastTS int64
		for _, ev := range tk.Events {
			if !seenTS || ev.TS < minTS {
				minTS = ev.TS
			}
			if !seenTS || ev.TS > maxTS {
				maxTS = ev.TS
			}
			seenTS = true
			lastTS = ev.TS
			switch ev.Kind {
			case KindState:
				s.States++
			case KindFire:
				s.Fires++
				fires[ev.Arg0]++
			case KindMultiFire:
				s.MultiFires++
			case KindPhaseBegin:
				stack = append(stack, open{ev.Arg0, ev.TS})
			case KindPhaseEnd:
				if n := len(stack); n > 0 {
					o := stack[n-1]
					stack = stack[:n-1]
					name := d.lookup(o.name)
					pw := phase[name]
					if pw == nil {
						pw = &PhaseWall{Track: tk.Name, Name: name}
						phase[name] = pw
					}
					pw.WallNS += ev.TS - o.ts
					pw.Count++
				}
			case KindAbort:
				s.Aborted = true
				s.AbortReason = d.lookup(ev.Arg0)
			}
		}
		// An aborted run leaves its phases open; charge them to the
		// track's last event so the wall table still adds up.
		for _, o := range stack {
			name := d.lookup(o.name)
			pw := phase[name]
			if pw == nil {
				pw = &PhaseWall{Track: tk.Name, Name: name}
				phase[name] = pw
			}
			pw.WallNS += lastTS - o.ts
			pw.Count++
		}
		var names []string
		for name := range phase {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s.Phases = append(s.Phases, *phase[name])
		}
	}
	if seenTS {
		s.SpanNS = maxTS - minTS
	}

	for id, n := range fires {
		s.Top = append(s.Top, TransCount{Name: d.transName(id), Count: n})
	}
	sort.Slice(s.Top, func(i, j int) bool {
		if s.Top[i].Count != s.Top[j].Count {
			return s.Top[i].Count > s.Top[j].Count
		}
		return s.Top[i].Name < s.Top[j].Name
	})
	if len(s.Top) > topN {
		s.Top = s.Top[:topN]
	}

	if seenTS && s.SpanNS > 0 {
		width := s.SpanNS/rateBuckets + 1
		s.Rate = make([]RateBucket, rateBuckets)
		for i := range s.Rate {
			s.Rate[i].StartNS = minTS + int64(i)*width
		}
		for _, tk := range d.Tracks {
			for _, ev := range tk.Events {
				if ev.Kind != KindState {
					continue
				}
				i := (ev.TS - minTS) / width
				s.Rate[i].States++
			}
		}
	}
	return s
}

// WriteText renders the summary as the gpotrace report.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events on %d tracks over %v", s.Events, s.Tracks, time.Duration(s.SpanNS))
	if s.Dropped > 0 {
		fmt.Fprintf(w, " (%d dropped by ring)", s.Dropped)
	}
	fmt.Fprintln(w)
	if len(s.Meta) > 0 {
		var keys []string
		for k := range s.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s: %s\n", k, s.Meta[k])
		}
	}
	fmt.Fprintf(w, "states: %d  fires: %d  multifires: %d\n", s.States, s.Fires, s.MultiFires)
	if s.Aborted {
		fmt.Fprintf(w, "ABORTED: %s\n", s.AbortReason)
	}
	if len(s.Top) > 0 {
		fmt.Fprintln(w, "top transitions by firings:")
		for _, tc := range s.Top {
			fmt.Fprintf(w, "  %8d  %s\n", tc.Count, tc.Name)
		}
	}
	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "per-phase wall:")
		for _, pw := range s.Phases {
			fmt.Fprintf(w, "  %-12s %-24s %12v  (%d)\n", pw.Track, pw.Name, time.Duration(pw.WallNS), pw.Count)
		}
	}
	if len(s.Rate) > 0 {
		fmt.Fprintln(w, "states/sec over time:")
		width := s.Rate[1].StartNS - s.Rate[0].StartNS
		for _, rb := range s.Rate {
			persec := float64(rb.States) / (float64(width) / 1e9)
			fmt.Fprintf(w, "  +%-12v %10d  (%.0f/s)\n", time.Duration(rb.StartNS), rb.States, persec)
		}
	}
}
