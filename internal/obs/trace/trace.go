// Package trace is the exploration flight recorder: a fixed-capacity
// ring buffer of compact binary events emitted by the analysis engines
// while they run. Where internal/obs answers "how much" (end-of-run
// counters and histograms), trace answers "in what order and when" —
// which conflict clusters blew up |r|, when a ZDD table doubled, what
// the engine was doing when a deadline killed it.
//
// The design rules mirror internal/obs:
//
//   - Nil is a no-op everywhere. A nil *Tracer hands out nil *Track
//     values whose Emit methods return immediately, so a disabled
//     recorder costs one predictable branch per event and zero
//     allocations (pinned by TestDisabledTracerZeroAlloc).
//   - Recording only observes. Engines never consult the tracer, so
//     enabling it cannot change what they explore (TestPinnedTable1
//     stays bit-identical either way).
//   - Fixed memory. Each track is a preallocated ring of Cap events;
//     a run that outlives the ring keeps the most recent Cap events
//     and counts the drops, so an aborted ten-minute exploration still
//     yields its final moments.
//
// A Track is single-goroutine, like the engines themselves; concurrent
// recorders (the parallel reachability workers) each own a track, which
// doubles as the Perfetto thread lane the events land on. Export with
// WriteChrome (Perfetto / chrome://tracing trace.json) or WriteJSONL
// (compact line-delimited events, the format gpod dumps on aborts), and
// read either back with ReadDump.
package trace

import (
	"sync"
	"time"
)

// Kind classifies one event. The Arg0/Arg1 meaning is per kind; see the
// String method for the wire names.
type Kind uint8

const (
	// KindNone is the zero Kind; never emitted.
	KindNone Kind = iota
	// KindPhaseBegin/KindPhaseEnd bracket an engine phase. Arg0 is the
	// interned name (Tracer.Intern).
	KindPhaseBegin
	KindPhaseEnd
	// KindState marks a state (or unfolding event) interned. Arg0 is the
	// state id, Arg1 a per-engine detail (|r| for GPO, 0 otherwise).
	KindState
	// KindFire marks a single transition explored. Arg0 is the
	// transition id, Arg1 the target state id (-1 if not yet assigned).
	KindFire
	// KindMultiFire marks a generalized multiple firing. Arg0 is the
	// number of transitions fired simultaneously, Arg1 the target state.
	KindMultiFire
	// KindStubborn marks a stubborn-set computation. Arg0 is the fired
	// set size, Arg1 the enabled-transition count it was reduced from.
	KindStubborn
	// KindConflict marks conflict-component resolution in the GPO
	// engine. Arg0 is the component count, Arg1 the single-enabled count.
	KindConflict
	// KindIter marks one symbolic image iteration. Arg0 is the
	// iteration number, Arg1 the BDD manager size after it.
	KindIter
	// KindCutoff marks an unfolding cutoff event. Arg0 is the event id.
	KindCutoff
	// KindZDDGrow marks an open-addressed ZDD table doubling. Arg0 is
	// the interned table name, Arg1 the new slot count.
	KindZDDGrow
	// KindCacheHit/KindCacheMiss mark a lookup in a named cache
	// (Arg0 = interned cache name).
	KindCacheHit
	KindCacheMiss
	// KindAbort is the terminal event of a cancelled run. Arg0 is the
	// interned reason (the context error text).
	KindAbort
	// KindFrameSend/KindFrameRecv are paired wire edges: one cluster
	// frame leaving or entering a process. Arg0 is the pair id
	// (PairID — level, RPC, source and destination peer), Arg1 the byte
	// count on the wire. A request/reply exchange emits four events
	// under one pair id: the client's send and recv, the server's recv
	// and send. Matching them across dumps reconstructs wire latency.
	KindFrameSend
	KindFrameRecv
	// KindSteal marks the coordinator moving work between peers during
	// level assignment. Arg0 is the BFS level, Arg1 the number of
	// frontier positions moved.
	KindSteal
	// KindLevel marks a BFS level boundary on the coordinator. Arg0 is
	// the level number (0-based), Arg1 the frontier size.
	KindLevel
	// KindExpand marks a peer finishing one expand batch. Arg0 is the
	// number of frontier entries expanded, Arg1 the BFS level.
	KindExpand
	// KindJob marks a durable-job lifecycle step (slice begin/end,
	// checkpoint save, resume). Arg0 is the interned step name, Arg1 a
	// step detail (typically the state count at the boundary).
	KindJob
)

// kindMax is the last valid kind; parsers iterate KindPhaseBegin..kindMax.
const kindMax = KindJob

// String returns the kind's wire name, used by both export formats.
func (k Kind) String() string {
	switch k {
	case KindPhaseBegin:
		return "phase_begin"
	case KindPhaseEnd:
		return "phase_end"
	case KindState:
		return "state"
	case KindFire:
		return "fire"
	case KindMultiFire:
		return "multifire"
	case KindStubborn:
		return "stubborn"
	case KindConflict:
		return "conflict"
	case KindIter:
		return "iter"
	case KindCutoff:
		return "cutoff"
	case KindZDDGrow:
		return "zdd_grow"
	case KindCacheHit:
		return "cache_hit"
	case KindCacheMiss:
		return "cache_miss"
	case KindAbort:
		return "abort"
	case KindFrameSend:
		return "frame_send"
	case KindFrameRecv:
		return "frame_recv"
	case KindSteal:
		return "steal"
	case KindLevel:
		return "level"
	case KindExpand:
		return "expand"
	case KindJob:
		return "job"
	}
	return "none"
}

// kindByName inverts String for the parsers.
func kindByName(s string) Kind {
	for k := KindPhaseBegin; k <= kindMax; k++ {
		if k.String() == s {
			return k
		}
	}
	return KindNone
}

// Event is one recorded occurrence: a timestamp relative to the
// tracer's start, a kind, and two kind-specific arguments. Fixed-size
// on purpose — recording is a ring-slot store, never an allocation.
type Event struct {
	TS   int64 // nanoseconds since Tracer start
	Kind Kind
	Arg0 int64
	Arg1 int64
}

// DefaultCap is the per-track ring capacity used when Options.Cap is
// zero: 64Ki events (2 MiB per track), enough to hold every event of
// the paper's small instances and the final moments of anything larger.
const DefaultCap = 1 << 16

// Options configures a Tracer.
type Options struct {
	// Cap is the per-track ring capacity in events (default DefaultCap).
	Cap int
}

// Tracer owns the recording of one run: a set of tracks, an interned
// string table (phase, table and reason names), and free-form metadata
// (request id, engine, instance) that joins a trace to the access log
// entry of the request that produced it.
//
// Track creation, interning and metadata take a mutex — they happen per
// run or per phase, never per event. A nil *Tracer is valid: every
// method no-ops and NewTrack returns a nil (also valid) *Track.
type Tracer struct {
	base time.Time
	cap  int

	mu     sync.Mutex
	tracks []*Track
	strs   []string
	strIdx map[string]int64
	meta   map[string]string
	trans  []string
}

// New returns an empty tracer whose clock starts now.
func New(opts Options) *Tracer {
	c := opts.Cap
	if c <= 0 {
		c = DefaultCap
	}
	return &Tracer{
		base:   time.Now(),
		cap:    c,
		strIdx: make(map[string]int64),
		meta:   make(map[string]string),
	}
}

// NewTrack adds a track (a Perfetto thread lane) and returns it. Each
// single-goroutine engine opens one; the parallel explorer opens one
// per worker. Returns nil (a valid no-op track) on a nil tracer.
func (t *Tracer) NewTrack(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tk := &Track{
		name:   name,
		base:   t.base,
		events: make([]Event, t.cap),
	}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Intern returns the id of s in the tracer's string table, adding it on
// first use. Cold-path only (phase boundaries, abort reasons). Returns
// 0 on a nil tracer; id 0 is reserved for the empty string.
func (t *Tracer) Intern(s string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.strs) == 0 {
		t.strs = append(t.strs, "")
		t.strIdx[""] = 0
	}
	if id, ok := t.strIdx[s]; ok {
		return id
	}
	id := int64(len(t.strs))
	t.strs = append(t.strs, s)
	t.strIdx[s] = id
	return id
}

// SetMeta attaches a metadata key/value pair (request id, engine name,
// instance) exported with the trace.
func (t *Tracer) SetMeta(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meta[k] = v
}

// SetTransNames records the net's transition names so exporters and
// gpotrace can label KindFire events. Later calls win (one tracer, one
// net per run is the norm; -compare reuses the same net).
func (t *Tracer) SetTransNames(names []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trans = names
}

// Track is one event lane: a fixed-capacity ring written by exactly one
// goroutine at a time (sequential engine loops; one per parallel
// worker). A nil *Track is valid and all methods are no-ops — the
// disabled-recorder hot path is the nil check alone.
type Track struct {
	name   string
	base   time.Time
	events []Event
	n      uint64 // total emitted; head slot = n % cap
}

// Emit records one event. Zero allocations: a ring-slot store plus a
// monotonic clock read.
func (tk *Track) Emit(k Kind, arg0, arg1 int64) {
	if tk == nil {
		return
	}
	tk.events[tk.n%uint64(len(tk.events))] = Event{
		TS:   time.Since(tk.base).Nanoseconds(),
		Kind: k,
		Arg0: arg0,
		Arg1: arg1,
	}
	tk.n++
}

// The per-kind helpers keep call sites readable; all are Emit aliases.

// State records a state interned (detail: |r| for GPO, 0 otherwise).
func (tk *Track) State(id, detail int64) { tk.Emit(KindState, id, detail) }

// Fire records a transition explored toward state to (-1 = pending).
func (tk *Track) Fire(t, to int64) { tk.Emit(KindFire, t, to) }

// MultiFire records a generalized simultaneous firing of k transitions.
func (tk *Track) MultiFire(k, to int64) { tk.Emit(KindMultiFire, k, to) }

// Stubborn records a stubborn set of size fired out of enabled.
func (tk *Track) Stubborn(fired, enabled int64) { tk.Emit(KindStubborn, fired, enabled) }

// Conflict records conflict-component resolution: comps components over
// singles single-enabled transitions.
func (tk *Track) Conflict(comps, singles int64) { tk.Emit(KindConflict, comps, singles) }

// Iter records one symbolic image iteration at manager size nodes.
func (tk *Track) Iter(i, nodes int64) { tk.Emit(KindIter, i, nodes) }

// Cutoff records an unfolding cutoff event.
func (tk *Track) Cutoff(id int64) { tk.Emit(KindCutoff, id, 0) }

// ZDDGrow records a table doubling to slots (nameID from Intern).
func (tk *Track) ZDDGrow(nameID, slots int64) { tk.Emit(KindZDDGrow, nameID, slots) }

// CacheHit/CacheMiss record a lookup in the named cache.
func (tk *Track) CacheHit(nameID int64)  { tk.Emit(KindCacheHit, nameID, 0) }
func (tk *Track) CacheMiss(nameID int64) { tk.Emit(KindCacheMiss, nameID, 0) }

// Begin/End bracket a phase (nameID from Intern).
func (tk *Track) Begin(nameID int64) { tk.Emit(KindPhaseBegin, nameID, 0) }
func (tk *Track) End(nameID int64)   { tk.Emit(KindPhaseEnd, nameID, 0) }

// Abort records the terminal event of a cancelled run (reasonID from
// Intern).
func (tk *Track) Abort(reasonID int64) { tk.Emit(KindAbort, reasonID, 0) }

// FrameSend/FrameRecv record one side of a cluster wire edge: a frame
// of the given byte count leaving or entering this process under pair
// id pid (see PairID).
func (tk *Track) FrameSend(pid, bytes int64) { tk.Emit(KindFrameSend, pid, bytes) }
func (tk *Track) FrameRecv(pid, bytes int64) { tk.Emit(KindFrameRecv, pid, bytes) }

// Steal records the coordinator moving n frontier positions at level.
func (tk *Track) Steal(level, n int64) { tk.Emit(KindSteal, level, n) }

// Level records a BFS level boundary of the given frontier size.
func (tk *Track) Level(level, size int64) { tk.Emit(KindLevel, level, size) }

// Expanded records a peer finishing an expand batch of n entries.
func (tk *Track) Expanded(n, level int64) { tk.Emit(KindExpand, n, level) }

// Job records a durable-job lifecycle step (stepID from Intern).
func (tk *Track) Job(stepID, detail int64) { tk.Emit(KindJob, stepID, detail) }

// Len returns the number of events currently held (≤ cap).
func (tk *Track) Len() int {
	if tk == nil {
		return 0
	}
	if tk.n < uint64(len(tk.events)) {
		return int(tk.n)
	}
	return len(tk.events)
}

// Dropped returns how many events the ring overwrote.
func (tk *Track) Dropped() uint64 {
	if tk == nil {
		return 0
	}
	if tk.n <= uint64(len(tk.events)) {
		return 0
	}
	return tk.n - uint64(len(tk.events))
}

// snapshot returns the held events oldest-first. Called by the
// exporters after the run (writers are quiesced).
func (tk *Track) snapshot() []Event {
	if tk == nil || tk.n == 0 {
		return nil
	}
	c := uint64(len(tk.events))
	out := make([]Event, 0, tk.Len())
	if tk.n <= c {
		return append(out, tk.events[:tk.n]...)
	}
	head := tk.n % c
	out = append(out, tk.events[head:]...)
	return append(out, tk.events[:head]...)
}

// RPC codes carried inside wire-edge pair ids, identifying which
// cluster exchange a frame belongs to.
const (
	RPCExpand  = 1
	RPCIntern  = 2
	RPCCollect = 3
	RPCCommit  = 4
)

// PairID packs a wire edge's identity — BFS level, RPC code, source
// and destination peer index — into one int64 so both ends of an
// exchange can stamp the same id without coordination. Layout:
// level<<20 | rpc<<16 | src<<8 | dst.
func PairID(level int64, rpc, src, dst int) int64 {
	return level<<20 | int64(rpc&0xf)<<16 | int64(src&0xff)<<8 | int64(dst&0xff)
}

// PairLevel/PairRPC/PairSrc/PairDst unpack a PairID.
func PairLevel(pid int64) int64 { return pid >> 20 }
func PairRPC(pid int64) int     { return int(pid>>16) & 0xf }
func PairSrc(pid int64) int     { return int(pid>>8) & 0xff }
func PairDst(pid int64) int     { return int(pid) & 0xff }

// Base returns the tracer's start time (zero on a nil tracer). The
// cluster layer stamps it into trace metadata (base_unix_ns) so merged
// timelines can place each dump on an absolute clock.
func (t *Tracer) Base() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.base
}

// Meta returns a copy of the tracer's metadata (nil-safe).
func (t *Tracer) Meta() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		m[k] = v
	}
	return m
}

// lookup resolves an interned id ("" when out of range).
func (t *Tracer) lookup(id int64) string {
	if t == nil || id < 0 || id >= int64(len(t.strs)) {
		return ""
	}
	return t.strs[id]
}
