package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety drives every method on nil receivers: a disabled
// recorder must be inert, not a panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tk := tr.NewTrack("x")
	if tk != nil {
		t.Fatalf("nil tracer produced non-nil track")
	}
	if id := tr.Intern("phase"); id != 0 {
		t.Fatalf("nil Intern = %d, want 0", id)
	}
	tr.SetMeta("k", "v")
	tr.SetTransNames([]string{"a"})
	if m := tr.Meta(); m != nil {
		t.Fatalf("nil Meta = %v, want nil", m)
	}
	if d := tr.Dump(); d != nil {
		t.Fatalf("nil Dump = %v, want nil", d)
	}
	tk.Emit(KindState, 1, 2)
	tk.State(1, 0)
	tk.Fire(1, 2)
	tk.MultiFire(3, 4)
	tk.Stubborn(1, 5)
	tk.Conflict(2, 3)
	tk.Iter(1, 10)
	tk.Cutoff(7)
	tk.ZDDGrow(0, 128)
	tk.CacheHit(0)
	tk.CacheMiss(0)
	tk.Begin(0)
	tk.End(0)
	tk.Abort(0)
	if tk.Len() != 0 || tk.Dropped() != 0 {
		t.Fatalf("nil track Len/Dropped non-zero")
	}
}

// TestDisabledTracerZeroAlloc pins the disabled cost: emitting on a nil
// track must not allocate. This is the contract that lets every engine
// hot loop call the tracer unconditionally.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tk *Track
	allocs := testing.AllocsPerRun(1000, func() {
		tk.State(1, 0)
		tk.Fire(2, 3)
		tk.Emit(KindConflict, 4, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil track emits allocated %v/op, want 0", allocs)
	}
}

// TestEnabledEmitZeroAlloc pins the enabled steady-state cost: ring
// stores, no allocations.
func TestEnabledEmitZeroAlloc(t *testing.T) {
	tr := New(Options{Cap: 1 << 10})
	tk := tr.NewTrack("main")
	allocs := testing.AllocsPerRun(1000, func() {
		tk.State(1, 0)
		tk.Fire(2, 3)
	})
	if allocs != 0 {
		t.Fatalf("enabled track emits allocated %v/op, want 0", allocs)
	}
}

// TestRingWrap checks the fixed-capacity semantics: the ring keeps the
// most recent Cap events oldest-first and counts the drops.
func TestRingWrap(t *testing.T) {
	tr := New(Options{Cap: 8})
	tk := tr.NewTrack("main")
	for i := 0; i < 20; i++ {
		tk.State(int64(i), 0)
	}
	if got := tk.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := tk.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := tk.snapshot()
	for i, ev := range evs {
		if want := int64(12 + i); ev.Arg0 != want {
			t.Fatalf("snapshot[%d].Arg0 = %d, want %d (oldest-first)", i, ev.Arg0, want)
		}
	}
}

// TestInternStable checks interning is idempotent and id 0 stays the
// empty string.
func TestInternStable(t *testing.T) {
	tr := New(Options{})
	a := tr.Intern("explore")
	b := tr.Intern("merge")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("bad intern ids %d, %d", a, b)
	}
	if again := tr.Intern("explore"); again != a {
		t.Fatalf("re-intern = %d, want %d", again, a)
	}
	if tr.lookup(0) != "" || tr.lookup(a) != "explore" {
		t.Fatalf("lookup mismatch")
	}
}

// TestKindNames checks String/kindByName are inverses over every kind.
func TestKindNames(t *testing.T) {
	for k := KindPhaseBegin; k <= KindAbort; k++ {
		if got := kindByName(k.String()); got != k {
			t.Fatalf("kindByName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if kindByName("bogus") != KindNone {
		t.Fatalf("kindByName(bogus) != KindNone")
	}
}

// sampleDump builds a dump exercising every kind, two tracks, interned
// strings, metadata and transition names.
func sampleDump() *Dump {
	tr := New(Options{Cap: 64})
	tr.SetMeta("engine", "gpo")
	tr.SetMeta("request_id", "req-42")
	tr.SetTransNames([]string{"think0", "eat0", "put0"})
	explore := tr.Intern("explore")
	uniq := tr.Intern("unique")
	rc := tr.Intern("result")
	reason := tr.Intern("context deadline exceeded")

	main := tr.NewTrack("core")
	main.Begin(explore)
	main.State(0, 1)
	main.Fire(1, 1)
	main.State(1, 2)
	main.MultiFire(2, 2)
	main.State(2, 1)
	main.Stubborn(1, 3)
	main.Conflict(2, 4)
	main.Iter(1, 100)
	main.Cutoff(5)
	main.ZDDGrow(uniq, 2048)
	main.CacheHit(rc)
	main.CacheMiss(rc)
	main.End(explore)
	main.Abort(reason)

	w1 := tr.NewTrack("worker-1")
	w1.State(3, 0)
	w1.Fire(0, 3)
	return tr.Dump()
}

func eventsEqual(t *testing.T, a, b *Dump, exactStrings bool) {
	t.Helper()
	if len(a.Tracks) != len(b.Tracks) {
		t.Fatalf("track count %d != %d", len(a.Tracks), len(b.Tracks))
	}
	for ti := range a.Tracks {
		at, bt := a.Tracks[ti], b.Tracks[ti]
		if at.Name != bt.Name {
			t.Fatalf("track %d name %q != %q", ti, at.Name, bt.Name)
		}
		if at.Dropped != bt.Dropped {
			t.Fatalf("track %q dropped %d != %d", at.Name, at.Dropped, bt.Dropped)
		}
		if len(at.Events) != len(bt.Events) {
			t.Fatalf("track %q event count %d != %d", at.Name, len(at.Events), len(bt.Events))
		}
		for i := range at.Events {
			ae, be := at.Events[i], bt.Events[i]
			if ae.Kind != be.Kind || ae.TS != be.TS {
				t.Fatalf("track %q event %d: %+v != %+v", at.Name, i, ae, be)
			}
			if ae.Arg1 != be.Arg1 {
				t.Fatalf("track %q event %d arg1: %+v != %+v", at.Name, i, ae, be)
			}
			if internedArg0(ae.Kind) {
				as, bs := a.lookup(ae.Arg0), b.lookup(be.Arg0)
				if as != bs {
					t.Fatalf("track %q event %d interned arg %q != %q", at.Name, i, as, bs)
				}
			} else if ae.Arg0 != be.Arg0 {
				t.Fatalf("track %q event %d arg0: %+v != %+v", at.Name, i, ae, be)
			}
		}
	}
	if exactStrings {
		if len(a.Strings) != len(b.Strings) {
			t.Fatalf("string table %v != %v", a.Strings, b.Strings)
		}
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			t.Fatalf("meta %q: %q != %q", k, v, b.Meta[k])
		}
	}
}

// TestJSONLRoundTrip checks WriteJSONL → ReadDump is lossless.
func TestJSONLRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump(jsonl): %v", err)
	}
	eventsEqual(t, d, got, true)
}

// TestChromeRoundTrip checks WriteChrome → ReadDump preserves the
// events semantically and that the output is well-formed Chrome trace
// JSON (object with a traceEvents array of ph/ts/pid/tid records).
func TestChromeRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	var shape struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("chrome output is not a JSON object: %v", err)
	}
	if len(shape.TraceEvents) == 0 {
		t.Fatalf("chrome output has no traceEvents")
	}
	for i, ev := range shape.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("traceEvents[%d] missing %q: %v", i, field, ev)
			}
		}
	}

	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump(chrome): %v", err)
	}
	eventsEqual(t, d, got, false)
}

// TestWriteFileFormats checks WriteFile picks the format by extension
// and ReadFile reads both back.
func TestWriteFileFormats(t *testing.T) {
	d := sampleDump()
	dir := t.TempDir()
	for _, name := range []string{"t.json", "t.jsonl"} {
		path := dir + "/" + name
		if err := WriteFile(path, d); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		eventsEqual(t, d, got, false)
	}
}

// TestSummarize checks the event-only reconstruction: state and firing
// counts, top transitions by name, per-phase wall, and the abort tail.
func TestSummarize(t *testing.T) {
	d := sampleDump()
	s := Summarize(d, 2)
	if s.States != 4 {
		t.Fatalf("States = %d, want 4", s.States)
	}
	if s.Fires != 2 || s.MultiFires != 1 {
		t.Fatalf("Fires/MultiFires = %d/%d, want 2/1", s.Fires, s.MultiFires)
	}
	if !s.Aborted || s.AbortReason != "context deadline exceeded" {
		t.Fatalf("abort tail = %v %q", s.Aborted, s.AbortReason)
	}
	if len(s.Top) != 2 {
		t.Fatalf("Top = %v, want 2 rows", s.Top)
	}
	names := map[string]bool{}
	for _, tc := range s.Top {
		if tc.Count != 1 {
			t.Fatalf("Top count = %+v, want 1", tc)
		}
		names[tc.Name] = true
	}
	if !names["eat0"] || !names["think0"] {
		t.Fatalf("Top names = %v, want eat0 and think0", s.Top)
	}
	foundPhase := false
	for _, pw := range s.Phases {
		if pw.Name == "explore" && pw.Track == "core" && pw.Count == 1 {
			foundPhase = true
		}
	}
	if !foundPhase {
		t.Fatalf("explore phase missing from %v", s.Phases)
	}
	var out strings.Builder
	s.WriteText(&out)
	for _, want := range []string{"states: 4", "ABORTED", "eat0", "explore"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("WriteText missing %q in:\n%s", want, out.String())
		}
	}
}

// TestSummarizeOpenPhase checks an aborted run's unclosed phase is
// still charged wall time up to the track's last event.
func TestSummarizeOpenPhase(t *testing.T) {
	tr := New(Options{Cap: 16})
	id := tr.Intern("explore")
	tk := tr.NewTrack("core")
	tk.Begin(id)
	tk.State(0, 0)
	tk.Abort(tr.Intern("canceled"))
	s := Summarize(tr.Dump(), 0)
	if len(s.Phases) != 1 || s.Phases[0].Name != "explore" {
		t.Fatalf("Phases = %v, want one open explore phase", s.Phases)
	}
	if s.Phases[0].WallNS < 0 {
		t.Fatalf("open phase wall negative: %v", s.Phases[0])
	}
}

// TestReadDumpRejectsGarbage checks the parser fails loudly on inputs
// that are neither format.
func TestReadDumpRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not json", `{"foo": 1}`, `{"type":"meta"` /* truncated */} {
		if _, err := ReadDump(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadDump(%q) succeeded, want error", in)
		}
	}
}
