package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// FormatVersion is the dump format version the writers stamp. Version
// 1 (files without a version field) added the original kinds; version
// 2 added the distributed-tracing kinds (frame_send/frame_recv/steal/
// level/expand/job). Parsers accept any version ≤ FormatVersion and
// refuse newer files with ErrVersionMismatch rather than silently
// dropping events they cannot name.
const FormatVersion = 2

// Typed refusal errors from ReadDump and ReadBundle. Callers match
// with errors.Is; all are wrapped with file context where available.
var (
	// ErrEmptyTrace means the input held no bytes (or only whitespace).
	ErrEmptyTrace = errors.New("trace: empty input")
	// ErrBadHeader means the header (JSONL meta line or Chrome JSON
	// envelope) was missing, truncated, or unparseable.
	ErrBadHeader = errors.New("trace: bad or truncated header")
	// ErrVersionMismatch means the dump was written by a newer format
	// version than this reader understands.
	ErrVersionMismatch = errors.New("trace: unsupported format version")
	// ErrMixedVersions means a bundle's per-peer dumps disagree on the
	// format version, so a merge would silently misread some of them.
	ErrMixedVersions = errors.New("trace: mixed format versions in bundle")
)

// Dump is a tracer frozen for export: the metadata, string table and
// transition names plus every track's surviving events oldest-first.
// Both wire formats (Chrome trace JSON and JSONL) serialize a Dump and
// ReadDump reconstructs one, so the summarizer works on either.
type Dump struct {
	Version int               `json:"v,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
	Strings []string          `json:"strings,omitempty"`
	Trans   []string          `json:"trans,omitempty"`
	Tracks  []DumpTrack       `json:"tracks"`
}

// DumpTrack is one exported event lane.
type DumpTrack struct {
	Name    string  `json:"name"`
	Dropped uint64  `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Dump freezes the tracer's current contents. Safe to call once the
// engines that write its tracks have returned; a nil tracer dumps nil.
func (t *Tracer) Dump() *Dump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Dump{
		Version: FormatVersion,
		Meta:    make(map[string]string, len(t.meta)),
		Strings: append([]string(nil), t.strs...),
		Trans:   append([]string(nil), t.trans...),
	}
	for k, v := range t.meta {
		d.Meta[k] = v
	}
	for _, tk := range t.tracks {
		d.Tracks = append(d.Tracks, DumpTrack{
			Name:    tk.name,
			Dropped: tk.Dropped(),
			Events:  tk.snapshot(),
		})
	}
	return d
}

// lookup resolves an interned id in the dump ("" when out of range).
func (d *Dump) lookup(id int64) string {
	if id < 0 || id >= int64(len(d.Strings)) {
		return ""
	}
	return d.Strings[id]
}

// intern adds s to the dump's string table (used when reconstructing a
// dump from a parsed file).
func (d *Dump) intern(s string) int64 {
	if len(d.Strings) == 0 {
		d.Strings = append(d.Strings, "")
	}
	for i, have := range d.Strings {
		if have == s {
			return int64(i)
		}
	}
	d.Strings = append(d.Strings, s)
	return int64(len(d.Strings)) - 1
}

// transName labels transition id for display ("t<id>" when unnamed).
func (d *Dump) transName(id int64) string {
	if id >= 0 && id < int64(len(d.Trans)) && d.Trans[id] != "" {
		return d.Trans[id]
	}
	return fmt.Sprintf("t%d", id)
}

// internedArg0 reports whether kind k's Arg0 is a string-table id, so
// exporters resolve it and parsers re-intern it.
func internedArg0(k Kind) bool {
	switch k {
	case KindPhaseBegin, KindPhaseEnd, KindZDDGrow, KindCacheHit, KindCacheMiss, KindAbort, KindJob:
		return true
	}
	return false
}

// chromeSidecar is the round-trip payload WriteChrome tucks under the
// top-level "gpoTrace" key. Chrome/Perfetto ignore unknown top-level
// keys, and it spares the parser from reconstructing string tables out
// of display names.
type chromeSidecar struct {
	V       int               `json:"v,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
	Strings []string          `json:"strings,omitempty"`
	Trans   []string          `json:"trans,omitempty"`
	Dropped []uint64          `json:"dropped,omitempty"`
}

// chromeEvent is one element of traceEvents, covering the phases we
// emit: M (metadata), B/E (phase spans), i (instants).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the whole trace.json object.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	Sidecar         *chromeSidecar `json:"gpoTrace,omitempty"`
}

// WriteChrome writes the dump in Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each track becomes a
// thread lane (tid = track index + 1); phase events become B/E spans
// and everything else an instant with {kind,a0,a1} args.
func WriteChrome(w io.Writer, d *Dump) error {
	f := chromeFile{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{},
		Sidecar: &chromeSidecar{
			V:       FormatVersion,
			Meta:    d.Meta,
			Strings: d.Strings,
			Trans:   d.Trans,
		},
	}
	for k, v := range d.Meta {
		f.OtherData[k] = v
	}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "gpo"},
	})
	for i, tk := range d.Tracks {
		f.Sidecar.Dropped = append(f.Sidecar.Dropped, tk.Dropped)
		tid := i + 1
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": tk.Name},
		})
		for _, ev := range tk.Events {
			ce := chromeEvent{
				TS:  float64(ev.TS) / 1e3,
				PID: 1,
				TID: tid,
			}
			switch ev.Kind {
			case KindPhaseBegin:
				ce.Ph, ce.Name = "B", d.lookup(ev.Arg0)
			case KindPhaseEnd:
				ce.Ph, ce.Name = "E", d.lookup(ev.Arg0)
			default:
				ce.Ph, ce.S = "i", "t"
				ce.Name = ev.Kind.String()
				ce.Args = map[string]any{
					"kind": ev.Kind.String(),
					"a0":   ev.Arg0,
					"a1":   ev.Arg1,
				}
				if internedArg0(ev.Kind) {
					ce.Args["name"] = d.lookup(ev.Arg0)
				}
				if ev.Kind == KindFire {
					ce.Args["t"] = d.transName(ev.Arg0)
				}
			}
			f.TraceEvents = append(f.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// jsonlMeta is the first line of a JSONL dump.
type jsonlMeta struct {
	Type    string            `json:"type"` // "meta"
	V       int               `json:"v,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`
	Strings []string          `json:"strings,omitempty"`
	Trans   []string          `json:"trans,omitempty"`
	Tracks  []string          `json:"tracks"`
	Dropped []uint64          `json:"dropped,omitempty"`
}

// jsonlEvent is one event line of a JSONL dump.
type jsonlEvent struct {
	Type  string `json:"type"` // "event"
	Track int    `json:"track"`
	TS    int64  `json:"ts"`
	Kind  string `json:"kind"`
	A0    int64  `json:"a0"`
	A1    int64  `json:"a1"`
}

// WriteJSONL writes the compact line-delimited format: one meta header
// line, then one line per event in track order. This is the format
// gpod dumps on aborted requests — cheap to produce and to tail.
func WriteJSONL(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	head := jsonlMeta{Type: "meta", V: FormatVersion, Meta: d.Meta, Strings: d.Strings, Trans: d.Trans}
	for _, tk := range d.Tracks {
		head.Tracks = append(head.Tracks, tk.Name)
		head.Dropped = append(head.Dropped, tk.Dropped)
	}
	if err := enc.Encode(&head); err != nil {
		return err
	}
	for i, tk := range d.Tracks {
		for _, ev := range tk.Events {
			line := jsonlEvent{
				Type:  "event",
				Track: i,
				TS:    ev.TS,
				Kind:  ev.Kind.String(),
				A0:    ev.Arg0,
				A1:    ev.Arg1,
			}
			if err := enc.Encode(&line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the dump to path, choosing the format by extension:
// ".jsonl" (or ".ndjson") writes JSONL, anything else Chrome trace
// JSON.
func WriteFile(path string, d *Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		werr = WriteJSONL(f, d)
	} else {
		werr = WriteChrome(f, d)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadDump parses either wire format back into a Dump, auto-detecting:
// a JSONL stream starts with a {"type":"meta",...} line; anything else
// must be a Chrome trace JSON object with a traceEvents array.
func ReadDump(r io.Reader) (*Dump, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, ErrEmptyTrace
	}
	first := trimmed
	if i := bytes.IndexByte(trimmed, '\n'); i >= 0 {
		first = trimmed[:i]
	}
	var probe struct {
		Type string `json:"type"`
	}
	if json.Unmarshal(first, &probe) == nil && probe.Type == "meta" {
		return readJSONL(trimmed)
	}
	return readChrome(trimmed)
}

// ReadFile parses a trace file written by WriteFile (either format).
func ReadFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}

func readJSONL(data []byte) (*Dump, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: missing jsonl meta line", ErrBadHeader)
	}
	var head jsonlMeta
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil || head.Type != "meta" {
		return nil, fmt.Errorf("%w: bad jsonl meta line", ErrBadHeader)
	}
	if head.V > FormatVersion {
		return nil, fmt.Errorf("%w: jsonl dump is v%d, reader understands ≤ v%d",
			ErrVersionMismatch, head.V, FormatVersion)
	}
	d := &Dump{Version: versionOr1(head.V), Meta: head.Meta, Strings: head.Strings, Trans: head.Trans}
	for i, name := range head.Tracks {
		tk := DumpTrack{Name: name}
		if i < len(head.Dropped) {
			tk.Dropped = head.Dropped[i]
		}
		d.Tracks = append(d.Tracks, tk)
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line jsonlEvent
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %v", lineNo, err)
		}
		if line.Type != "event" {
			continue
		}
		if line.Track < 0 || line.Track >= len(d.Tracks) {
			return nil, fmt.Errorf("trace: jsonl line %d: track %d out of range", lineNo, line.Track)
		}
		k := kindByName(line.Kind)
		if k == KindNone {
			return nil, fmt.Errorf("trace: jsonl line %d: unknown kind %q", lineNo, line.Kind)
		}
		d.Tracks[line.Track].Events = append(d.Tracks[line.Track].Events, Event{
			TS: line.TS, Kind: k, Arg0: line.A0, Arg1: line.A1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

func readChrome(data []byte) (*Dump, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%w: not chrome trace json: %v", ErrBadHeader, err)
	}
	if f.TraceEvents == nil {
		return nil, fmt.Errorf("%w: chrome trace json has no traceEvents", ErrBadHeader)
	}
	d := &Dump{Version: 1}
	if f.Sidecar != nil {
		if f.Sidecar.V > FormatVersion {
			return nil, fmt.Errorf("%w: chrome sidecar is v%d, reader understands ≤ v%d",
				ErrVersionMismatch, f.Sidecar.V, FormatVersion)
		}
		d.Version = versionOr1(f.Sidecar.V)
		d.Meta = f.Sidecar.Meta
		d.Strings = f.Sidecar.Strings
		d.Trans = f.Sidecar.Trans
	}
	// tid → track index, discovered from thread_name metadata and any
	// event tids we see, in first-appearance order.
	trackOf := map[int]int{}
	track := func(tid int, name string) int {
		if i, ok := trackOf[tid]; ok {
			if name != "" && d.Tracks[i].Name == "" {
				d.Tracks[i].Name = name
			}
			return i
		}
		i := len(d.Tracks)
		trackOf[tid] = i
		d.Tracks = append(d.Tracks, DumpTrack{Name: name})
		return i
	}
	for _, ce := range f.TraceEvents {
		switch ce.Ph {
		case "M":
			if ce.Name == "thread_name" && ce.TID != 0 {
				name, _ := ce.Args["name"].(string)
				ti := track(ce.TID, name)
				if f.Sidecar != nil && ti < len(f.Sidecar.Dropped) {
					d.Tracks[ti].Dropped = f.Sidecar.Dropped[ti]
				}
			}
		case "B", "E":
			ti := track(ce.TID, "")
			k := KindPhaseBegin
			if ce.Ph == "E" {
				k = KindPhaseEnd
			}
			d.Tracks[ti].Events = append(d.Tracks[ti].Events, Event{
				TS: nsOfMicros(ce.TS), Kind: k, Arg0: d.intern(ce.Name),
			})
		case "i", "I":
			ti := track(ce.TID, "")
			kindName := ce.Name
			if s, ok := ce.Args["kind"].(string); ok {
				kindName = s
			}
			k := kindByName(kindName)
			if k == KindNone {
				continue // foreign instant; not ours
			}
			ev := Event{TS: nsOfMicros(ce.TS), Kind: k}
			if v, ok := ce.Args["a0"].(float64); ok {
				ev.Arg0 = int64(v)
			}
			if v, ok := ce.Args["a1"].(float64); ok {
				ev.Arg1 = int64(v)
			}
			if internedArg0(k) {
				if s, ok := ce.Args["name"].(string); ok {
					ev.Arg0 = d.intern(s)
				}
			}
			d.Tracks[ti].Events = append(d.Tracks[ti].Events, ev)
		}
	}
	return d, nil
}

// versionOr1 maps an absent (zero) version field to legacy v1.
func versionOr1(v int) int {
	if v <= 0 {
		return 1
	}
	return v
}

// nsOfMicros undoes the microsecond scaling of Chrome trace timestamps
// (rounded, so ns-precision events survive the float trip).
func nsOfMicros(us float64) int64 {
	return int64(math.Round(us * 1e3))
}

// sortTracksStable keeps summaries deterministic regardless of track
// discovery order in a parsed Chrome file.
func (d *Dump) sortTracksStable() {
	sort.SliceStable(d.Tracks, func(i, j int) bool { return d.Tracks[i].Name < d.Tracks[j].Name })
}
