package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time export of a registry: plain maps and
// slices, directly marshalable to JSON and comparable in tests.
type Snapshot struct {
	TakenUnixNS int64                        `json:"taken_unix_ns"`
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans       []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot exports the registry's current state. Safe on a nil registry
// (returns an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	s.TakenUnixNS = r.now().UnixNano()
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.spans) > 0 {
		s.Spans = make([]SpanRecord, len(r.spans))
		copy(s.Spans, r.spans)
	}
	return s
}

// Sink consumes a snapshot: the seam between metric collection and
// output format.
type Sink interface {
	Emit(*Snapshot) error
}

// Flush snapshots the registry into the sink. Safe on a nil registry.
func (r *Registry) Flush(s Sink) error {
	return s.Emit(r.Snapshot())
}

// NopSink discards every snapshot.
type NopSink struct{}

// Emit discards the snapshot.
func (NopSink) Emit(*Snapshot) error { return nil }

// JSONSink writes each snapshot as one JSON document.
type JSONSink struct {
	W io.Writer
	// Indent pretty-prints with two-space indentation.
	Indent bool
}

// Emit marshals the snapshot to the writer.
func (s JSONSink) Emit(snap *Snapshot) error {
	enc := json.NewEncoder(s.W)
	if s.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(snap)
}

// TextSink writes a human-readable summary, metrics sorted by name.
type TextSink struct {
	W io.Writer
}

// Emit formats the snapshot as aligned text.
func (s TextSink) Emit(snap *Snapshot) error {
	for _, name := range sortedKeys(snap.Counters) {
		if _, err := fmt.Fprintf(s.W, "counter %-32s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if _, err := fmt.Fprintf(s.W, "gauge   %-32s %d\n", name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(s.W, "hist    %-32s n=%d mean=%.2f min=%d p50=%d p90=%d p99=%d max=%d\n",
			name, h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.Max); err != nil {
			return err
		}
	}
	for _, sp := range snap.Spans {
		if _, err := fmt.Fprintf(s.W, "span    %-32s wall=%v alloc=%dB mallocs=%d gc=%d\n",
			sp.Name, time.Duration(sp.WallNS).Round(time.Microsecond), sp.AllocBytes, sp.Mallocs, sp.GCCycles); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
