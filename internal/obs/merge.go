package obs

// Merge folds every metric of from into r. The daemon gives each
// verification a fresh per-run Registry — so the run's ledger entry and
// /v1/runs/{id} snapshot see only that run's numbers — and then merges
// it into the long-lived process registry that /metrics serves, keeping
// the cumulative series every existing test and dashboard pins.
//
// Semantics per metric kind:
//
//   - Counters add: process totals are sums over runs.
//   - Gauges take the maximum: every engine gauge in this repo is a
//     peak or a high-water mark (reach.queue_peak, zdd.nodes_peak,
//     server.cache_bytes is owned by the process registry and never
//     appears in per-run registries), so max is the correct fold.
//   - Histograms merge distributions: counts, sums, and buckets add;
//     min/max fold through the same CAS loops Observe uses.
//   - Spans append in completion order.
//
// Nil r or from is a no-op. Merge takes from's read lock only; callers
// must not Merge a registry into itself.
func (r *Registry) Merge(from *Registry) {
	if r == nil || from == nil {
		return
	}
	from.mu.RLock()
	defer from.mu.RUnlock()
	for name, c := range from.counters {
		if v := c.Value(); v != 0 {
			r.Counter(name).Add(v)
		}
	}
	for name, g := range from.gauges {
		r.Gauge(name).SetMax(g.Value())
	}
	for name, h := range from.hists {
		if h.Count() == 0 {
			continue
		}
		dst := r.Histogram(name)
		dst.count.Add(h.count.Load())
		dst.sum.Add(h.sum.Load())
		for i := 0; i < nbuckets; i++ {
			if n := h.buckets[i].Load(); n != 0 {
				dst.buckets[i].Add(n)
			}
		}
		for v := h.min.Load(); ; {
			cur := dst.min.Load()
			if v >= cur || dst.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for v := h.max.Load(); ; {
			cur := dst.max.Load()
			if v <= cur || dst.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if len(from.spans) > 0 {
		r.mu.Lock()
		r.spans = append(r.spans, from.spans...)
		r.mu.Unlock()
	}
}
