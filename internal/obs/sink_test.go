package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// populate fills a registry with one of everything, on a fake clock so
// the snapshot is deterministic.
func populate(t *testing.T) *Registry {
	t.Helper()
	clock := NewFakeClock(time.Unix(1000, 0))
	r := NewWithClock(clock)
	r.Counter("core.states").Add(523)
	r.Counter("core.arcs").Add(1200)
	r.Gauge("core.peak_valid").SetMax(9)
	h := r.Histogram("stubborn.set_size")
	for _, v := range []int64{1, 1, 2, 3, 8} {
		h.Observe(v)
	}
	sp := r.StartSpan("core.analyze")
	clock.Advance(250 * time.Millisecond)
	sp.End()
	return r
}

func TestJSONSinkRoundTrip(t *testing.T) {
	r := populate(t)
	want := r.Snapshot()

	var buf bytes.Buffer
	if err := r.Flush(JSONSink{W: &buf, Indent: true}); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("sink output does not parse: %v", err)
	}

	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Errorf("counters: got %v, want %v", got.Counters, want.Counters)
	}
	if !reflect.DeepEqual(got.Gauges, want.Gauges) {
		t.Errorf("gauges: got %v, want %v", got.Gauges, want.Gauges)
	}
	if !reflect.DeepEqual(got.Histograms, want.Histograms) {
		t.Errorf("histograms: got %v, want %v", got.Histograms, want.Histograms)
	}
	if len(got.Spans) != 1 {
		t.Fatalf("spans: got %d, want 1", len(got.Spans))
	}
	if got.Spans[0].Name != "core.analyze" || got.Spans[0].WallNS != int64(250*time.Millisecond) {
		t.Errorf("span round trip: got %+v", got.Spans[0])
	}
	if got.TakenUnixNS != want.TakenUnixNS {
		t.Errorf("taken_unix_ns: got %d, want %d", got.TakenUnixNS, want.TakenUnixNS)
	}
}

func TestTextSink(t *testing.T) {
	r := populate(t)
	var buf bytes.Buffer
	if err := r.Flush(TextSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"core.states", "523", "core.peak_valid", "stubborn.set_size", "core.analyze"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Counters must be sorted by name.
	if strings.Index(out, "core.arcs") > strings.Index(out, "core.states") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

func TestNopSink(t *testing.T) {
	if err := populate(t).Flush(NopSink{}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := &BenchReport{
		Schema:    BenchSchema,
		Date:      "2026-08-06T00:00:00Z",
		GoVersion: "go1.22",
		Entries: []BenchEntry{
			{Family: "rw", Size: 9, Engine: "gpo", States: 2, WallNS: 12345,
				Allocs: 10, Counters: map[string]int64{"core.multi_firings": 3}},
			{Family: "asat", Size: 8, Engine: "symbolic", Skipped: true},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBenchReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, rep)
	}

	if _, err := ParseBenchReport([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Error("wrong schema should be rejected")
	}
	if _, err := ParseBenchReport([]byte(`not json`)); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestBenchFileName(t *testing.T) {
	d := time.Date(2026, 8, 6, 15, 4, 5, 0, time.UTC)
	if got := BenchFileName(d); got != "BENCH_2026-08-06.json" {
		t.Errorf("BenchFileName = %q", got)
	}
}
