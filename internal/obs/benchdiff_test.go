package obs

import (
	"strings"
	"testing"
)

func diffFixtures() (*BenchReport, *BenchReport) {
	base := &BenchReport{
		Schema: BenchSchema, Date: "2026-01-01T00:00:00Z", Workers: 0,
		Entries: []BenchEntry{
			{Family: "rw", Size: 6, Engine: "exhaustive", States: 72, WallNS: 1_000_000},
			{Family: "rw", Size: 6, Engine: "gpo", States: 2, WallNS: 500_000},
			{Family: "rw", Size: 9, Engine: "exhaustive", States: 523, WallNS: 2_000_000},
			{Family: "rw", Size: 9, Engine: "symbolic", Skipped: true},
			{Family: "rw", Size: 12, Engine: "exhaustive", States: 4110, WallNS: 4_000_000},
		},
	}
	cur := &BenchReport{
		Schema: BenchSchema, Date: "2026-02-01T00:00:00Z", Workers: 0,
		Entries: []BenchEntry{
			// >10% slower: flagged.
			{Family: "rw", Size: 6, Engine: "exhaustive", States: 72, WallNS: 1_200_000},
			// Faster and same states: clean.
			{Family: "rw", Size: 6, Engine: "gpo", States: 2, WallNS: 400_000},
			// Within threshold but different states: mismatch.
			{Family: "rw", Size: 9, Engine: "exhaustive", States: 524, WallNS: 2_050_000},
			{Family: "rw", Size: 9, Engine: "symbolic", Skipped: true},
			// rw(12)/exhaustive missing; rw(15) new.
			{Family: "rw", Size: 15, Engine: "exhaustive", States: 29642, WallNS: 9_000_000},
		},
	}
	return base, cur
}

func TestDiffBenchReports(t *testing.T) {
	base, cur := diffFixtures()
	d := DiffBenchReports(base, cur, 0) // 0 selects the 10% default

	if d.Threshold != DefaultRegressionThreshold {
		t.Errorf("threshold = %v, want default %v", d.Threshold, DefaultRegressionThreshold)
	}
	if d.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", d.Regressions)
	}
	if d.Mismatches != 1 {
		t.Errorf("mismatches = %d, want 1", d.Mismatches)
	}
	if d.Clean() {
		t.Error("diff with flags must not be Clean")
	}

	byKey := make(map[string]BenchDelta)
	for _, delta := range d.Deltas {
		byKey[delta.Key()] = delta
	}
	if !byKey["rw(6)/exhaustive"].Regression {
		t.Error("rw(6)/exhaustive 1.2x slowdown not flagged")
	}
	if byKey["rw(6)/gpo"].Regression || byKey["rw(6)/gpo"].StatesMismatch {
		t.Error("clean speedup wrongly flagged")
	}
	if !byKey["rw(9)/exhaustive"].StatesMismatch {
		t.Error("state drift 523 -> 524 not flagged")
	}
	if byKey["rw(9)/exhaustive"].Regression {
		t.Error("2.5% slowdown flagged at a 10% threshold")
	}

	if len(d.Incomparable) != 1 || d.Incomparable[0] != "rw(9)/symbolic" {
		t.Errorf("incomparable = %v, want [rw(9)/symbolic]", d.Incomparable)
	}
	if len(d.OnlyInBase) != 1 || d.OnlyInBase[0] != "rw(12)/exhaustive" {
		t.Errorf("only-in-base = %v", d.OnlyInBase)
	}
	if len(d.OnlyInNew) != 1 || d.OnlyInNew[0] != "rw(15)/exhaustive" {
		t.Errorf("only-in-new = %v", d.OnlyInNew)
	}
}

func TestDiffBenchReportsThresholdAndWorkers(t *testing.T) {
	base, cur := diffFixtures()
	// At a 25% threshold the 1.2x slowdown is tolerated.
	d := DiffBenchReports(base, cur, 0.25)
	if d.Regressions != 0 {
		t.Errorf("regressions at 25%% = %d, want 0", d.Regressions)
	}
	cur.Workers = 4
	d = DiffBenchReports(base, cur, 0.25)
	if !d.WorkersDiffer {
		t.Error("worker-count change not surfaced")
	}
}

func TestDiffBenchReportText(t *testing.T) {
	base, cur := diffFixtures()
	var sb strings.Builder
	if err := DiffBenchReports(base, cur, 0).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "STATES 523!=524", "only in base artifact", "only in new artifact", "1 wall-clock regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
