package obs

import (
	"strconv"
	"strings"
	"testing"
)

// promFixture builds a registry with one of each metric type.
func promFixture() *Registry {
	r := New()
	r.Counter("reach.states").Add(322)
	r.Gauge("server.queue_depth").Set(3)
	h := r.Histogram("server.request_wall_ns")
	for _, v := range []int64{1, 2, 3, 64} {
		h.Observe(v)
	}
	return r
}

// TestWritePrometheusFormat checks the exposition against the 0.0.4
// text format: HELP/TYPE lines per family, sanitized names, and
// cumulative _bucket/_sum/_count series for histograms.
func TestWritePrometheusFormat(t *testing.T) {
	var out strings.Builder
	if err := WritePrometheus(&out, promFixture().Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := out.String()
	want := []string{
		"# HELP reach_states Counter reach.states.",
		"# TYPE reach_states counter",
		"reach_states 322",
		"# TYPE server_queue_depth gauge",
		"server_queue_depth 3",
		"# TYPE server_request_wall_ns histogram",
		`server_request_wall_ns_bucket{le="1"} 1`,
		`server_request_wall_ns_bucket{le="3"} 3`,    // cumulative: 1 + (2,3)
		`server_request_wall_ns_bucket{le="127"} 4`,  // + 64
		`server_request_wall_ns_bucket{le="+Inf"} 4`, // always closes at count
		"server_request_wall_ns_sum 70",
		"server_request_wall_ns_count 4",
	}
	for _, line := range want {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
	// Every non-comment line is `name value` or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestWritePrometheusBucketsCumulative checks ordering invariants: each
// histogram's bucket counts are non-decreasing and end at _count.
func TestWritePrometheusBucketsCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("zdd.probe_len")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	var out strings.Builder
	if err := WritePrometheus(&out, r.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	last := int64(-1)
	sawInf := false
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "zdd_probe_len_bucket") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, last)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
			if n != 100 {
				t.Fatalf("+Inf bucket = %d, want 100", n)
			}
		}
	}
	if !sawInf {
		t.Fatalf("no +Inf bucket emitted:\n%s", out.String())
	}
}

// TestPromName pins the sanitizer.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"reach.states":    "reach_states",
		"zdd.unique_hits": "zdd_unique_hits",
		"a-b c":           "a_b_c",
		"9lives":          "_9lives",
		"ok:colon":        "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotNamesMatchProm checks the two /metrics views agree:
// every registered metric name appears in both the JSON snapshot and
// the Prometheus exposition (as its sanitized form).
func TestSnapshotNamesMatchProm(t *testing.T) {
	r := promFixture()
	snap := r.Snapshot()
	var out strings.Builder
	if err := WritePrometheus(&out, snap); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	prom := out.String()
	check := func(name string) {
		t.Helper()
		if !strings.Contains(prom, "\n"+promName(name)+" ") &&
			!strings.Contains(prom, "\n"+promName(name)+"_count ") &&
			!strings.HasPrefix(prom, promName(name)+" ") {
			t.Errorf("metric %q (prom %q) missing from exposition:\n%s", name, promName(name), prom)
		}
	}
	for name := range snap.Counters {
		check(name)
	}
	for name := range snap.Gauges {
		check(name)
	}
	for name := range snap.Histograms {
		check(name)
	}
}
