package obs

import (
	"sync"
	"testing"
	"time"
)

func drain(ch <-chan Update) []Update {
	var out []Update
	for {
		select {
		case u, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, u)
		default:
			return out
		}
	}
}

func TestPublisherFanOut(t *testing.T) {
	pub := NewPublisher()
	a, cancelA := pub.Subscribe(8)
	b, cancelB := pub.Subscribe(8)
	defer cancelA()
	defer cancelB()
	if got := pub.Subscribers(); got != 2 {
		t.Fatalf("Subscribers() = %d, want 2", got)
	}
	for i := int64(1); i <= 3; i++ {
		pub.Publish(Update{Count: i})
	}
	for name, ch := range map[string]<-chan Update{"a": a, "b": b} {
		got := drain(ch)
		if len(got) != 3 {
			t.Fatalf("subscriber %s got %d updates, want 3: %v", name, len(got), got)
		}
		for i, u := range got {
			if u.Count != int64(i+1) {
				t.Errorf("subscriber %s update %d has Count=%d, want %d", name, i, u.Count, i+1)
			}
		}
	}
	if pub.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", pub.Dropped())
	}
}

func TestPublisherLateSubscriberSeesLast(t *testing.T) {
	pub := NewPublisher()
	// With no subscribers Publish is a no-op, so Last is unset...
	pub.Publish(Update{Count: 1})
	if _, ok := pub.Last(); ok {
		t.Fatal("Last() set with zero subscribers; fast path should have skipped it")
	}
	// ...but once anyone listens, later subscribers are primed with the
	// most recent update instead of waiting for the next throttled tick.
	_, cancelA := pub.Subscribe(1)
	defer cancelA()
	pub.Publish(Update{Count: 42})
	late, cancelB := pub.Subscribe(4)
	defer cancelB()
	select {
	case u := <-late:
		if u.Count != 42 {
			t.Fatalf("late subscriber primed with Count=%d, want 42", u.Count)
		}
	default:
		t.Fatal("late subscriber not primed with last update")
	}
	if u, ok := pub.Last(); !ok || u.Count != 42 {
		t.Fatalf("Last() = %+v, %v; want Count=42, true", u, ok)
	}
}

func TestPublisherDropOldest(t *testing.T) {
	pub := NewPublisher()
	ch, cancel := pub.Subscribe(2)
	defer cancel()
	for i := int64(1); i <= 5; i++ {
		pub.Publish(Update{Count: i}) // never blocks, buffer is 2
	}
	got := drain(ch)
	if len(got) != 2 {
		t.Fatalf("got %d buffered updates, want 2: %v", len(got), got)
	}
	// Oldest dropped: the buffer holds the newest two.
	if got[0].Count != 4 || got[1].Count != 5 {
		t.Errorf("buffer = [%d %d], want [4 5]", got[0].Count, got[1].Count)
	}
	if pub.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", pub.Dropped())
	}
}

func TestPublisherDetachMidStream(t *testing.T) {
	pub := NewPublisher()
	a, cancelA := pub.Subscribe(8)
	b, cancelB := pub.Subscribe(8)
	defer cancelB()
	pub.Publish(Update{Count: 1})
	cancelA()
	cancelA() // idempotent
	if _, ok := <-a; len(drain(a)) != 0 && ok {
		t.Fatal("cancelled subscriber channel not drained+closed")
	}
	pub.Publish(Update{Count: 2})
	if got := drain(b); len(got) != 2 {
		t.Fatalf("remaining subscriber got %d updates, want 2", len(got))
	}
	if got := pub.Subscribers(); got != 1 {
		t.Fatalf("Subscribers() after detach = %d, want 1", got)
	}
}

func TestPublisherClose(t *testing.T) {
	pub := NewPublisher()
	ch, cancel := pub.Subscribe(4)
	pub.Publish(Update{Count: 7})
	pub.Close()
	pub.Close()                   // idempotent
	pub.Publish(Update{Count: 8}) // no-op after Close
	var got []Update
	for u := range ch { // terminates: Close closed the channel
		got = append(got, u)
	}
	if len(got) != 1 || got[0].Count != 7 {
		t.Fatalf("drained %v after Close, want just Count=7", got)
	}
	cancel() // safe after Close
	// Subscribing to a closed publisher yields the last update, then EOF.
	late, _ := pub.Subscribe(1)
	u, ok := <-late
	if !ok || u.Count != 7 {
		t.Fatalf("post-Close subscriber got (%+v, %v), want (Count=7, true)", u, ok)
	}
	if _, ok := <-late; ok {
		t.Fatal("post-Close subscriber channel not closed after replay")
	}
}

func TestPublisherNilSafe(t *testing.T) {
	var pub *Publisher
	pub.Publish(Update{Count: 1})
	pub.Close()
	if pub.Subscribers() != 0 || pub.Dropped() != 0 {
		t.Fatal("nil publisher reported nonzero state")
	}
	if _, ok := pub.Last(); ok {
		t.Fatal("nil publisher has a last update")
	}
	ch, cancel := pub.Subscribe(4)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("nil publisher's subscriber channel not closed")
	}
}

// TestPublisherSlowSubscriberNeverBlocksEngine is the drop-oldest pin
// from the engine's point of view: a subscriber that never receives must
// not slow a Progress-ticking exploration loop down. Run under -race
// this also exercises the Publish/Subscribe/cancel interleavings.
func TestPublisherSlowSubscriberNeverBlocksEngine(t *testing.T) {
	pub := NewPublisher()
	slow, cancelSlow := pub.Subscribe(1)
	defer cancelSlow()
	_ = slow // deliberately never received from

	prog := &Progress{Label: "test", Every: 1, Report: pub.Publish}
	const ticks = 50_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < ticks; i++ {
			prog.Tick(1)
		}
		prog.Done()
	}()

	// Churn subscribers while the engine runs: attach, read a little,
	// detach — mid-exploration attach/detach must be safe.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ch, cancel := pub.Subscribe(4)
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engine loop blocked behind a slow subscriber")
	}
	wg.Wait()
	if prog.Count() != ticks {
		t.Fatalf("Progress.Count() = %d, want %d", prog.Count(), ticks)
	}
	if pub.Dropped() == 0 {
		t.Error("expected drops against the stalled subscriber, got none")
	}
}

func TestRegistryMerge(t *testing.T) {
	proc := New()
	proc.Counter("reach.states").Add(100)
	proc.Gauge("reach.queue_peak").Set(10)
	proc.Histogram("por.stubborn_size").Observe(4)
	s := proc.StartSpan("warmup")
	s.End()

	run := New()
	run.Counter("reach.states").Add(322)
	run.Counter("reach.edges").Add(7)
	run.Gauge("reach.queue_peak").Set(5) // below process peak: must not lower it
	run.Gauge("zdd.nodes_peak").Set(99)
	run.Histogram("por.stubborn_size").Observe(2)
	run.Histogram("por.stubborn_size").Observe(16)
	rs := run.StartSpan("verify.run")
	rs.End()

	proc.Merge(run)

	if got := proc.Counter("reach.states").Value(); got != 422 {
		t.Errorf("merged reach.states = %d, want 422", got)
	}
	if got := proc.Counter("reach.edges").Value(); got != 7 {
		t.Errorf("merged reach.edges = %d, want 7", got)
	}
	if got := proc.Gauge("reach.queue_peak").Value(); got != 10 {
		t.Errorf("merged reach.queue_peak = %d, want 10 (max fold)", got)
	}
	if got := proc.Gauge("zdd.nodes_peak").Value(); got != 99 {
		t.Errorf("merged zdd.nodes_peak = %d, want 99", got)
	}
	h := proc.Histogram("por.stubborn_size")
	if h.Count() != 3 || h.Sum() != 22 || h.Min() != 2 || h.Max() != 16 {
		t.Errorf("merged histogram count/sum/min/max = %d/%d/%d/%d, want 3/22/2/16",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	spans := proc.Spans()
	if len(spans) != 2 || spans[0].Name != "warmup" || spans[1].Name != "verify.run" {
		t.Errorf("merged spans = %v, want [warmup verify.run]", spans)
	}

	// Nil folds are no-ops.
	proc.Merge(nil)
	(*Registry)(nil).Merge(run)
	if got := proc.Counter("reach.states").Value(); got != 422 {
		t.Errorf("nil merges changed state: reach.states = %d", got)
	}
}

// BenchmarkProgressPublishNoSubscribers pins the unwatched-run cost:
// an engine ticking a Progress wired to a Publisher nobody subscribed
// to must not allocate (check.sh greps for "0 allocs/op"). This is the
// streaming analogue of the disabled-trace hot-path gate.
func BenchmarkProgressPublishNoSubscribers(b *testing.B) {
	pub := NewPublisher()
	prog := &Progress{Label: "bench", Every: 1, Report: pub.Publish}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Tick(1)
	}
}
