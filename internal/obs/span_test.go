package obs

import (
	"testing"
	"time"
)

func TestSpanFakeClockWall(t *testing.T) {
	clock := NewFakeClock(time.Unix(100, 0))
	r := NewWithClock(clock)
	sp := r.StartSpan("phase.one")
	clock.Advance(3 * time.Second)
	if d := sp.End(); d != 3*time.Second {
		t.Errorf("End returned %v, want 3s", d)
	}
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	rec := spans[0]
	if rec.Name != "phase.one" {
		t.Errorf("name = %q", rec.Name)
	}
	if rec.StartUnixNS != time.Unix(100, 0).UnixNano() {
		t.Errorf("start = %d", rec.StartUnixNS)
	}
	if rec.WallNS != int64(3*time.Second) || rec.Wall() != 3*time.Second {
		t.Errorf("wall = %d", rec.WallNS)
	}
}

func TestSpanMemDeltas(t *testing.T) {
	r := New()
	sp := r.StartSpan("alloc")
	// Allocate something measurable (1 MB kept live until End).
	buf := make([]byte, 1<<20)
	_ = buf[len(buf)-1]
	sp.End()
	rec := r.Spans()[0]
	if rec.AllocBytes < 1<<20 {
		t.Errorf("alloc_bytes = %d, want >= 1MiB", rec.AllocBytes)
	}
	if rec.Mallocs < 1 {
		t.Errorf("mallocs = %d, want >= 1", rec.Mallocs)
	}
}

func TestSpansOrdered(t *testing.T) {
	r := New()
	a := r.StartSpan("a")
	b := r.StartSpan("b")
	b.End()
	a.End()
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "a" {
		t.Fatalf("spans = %+v, want completion order b, a", spans)
	}
}
