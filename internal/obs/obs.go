// Package obs is the unified instrumentation layer shared by every
// analysis engine in this repository: named atomic counters, gauges and
// histograms collected in a Registry, a span tracer that records
// wall-clock and runtime.MemStats deltas per phase, periodic progress
// reporting with an injectable clock, and Sink implementations (text,
// JSON, no-op) for exporting a Snapshot.
//
// The paper's whole argument is quantitative — states explored, peak BDD
// nodes, runtimes — so the engines must be able to account for where they
// spend effort without perturbing what they explore. The design rules
// follow from that:
//
//   - No global state. A Registry is created by the caller and handed to
//     an engine through its Options (core.Options.Metrics and friends).
//   - Nil is a no-op everywhere. A nil *Registry yields nil *Counter /
//     *Gauge / *Histogram / *Span values whose methods return
//     immediately, so a disabled metric costs one predictable branch on
//     the hot path and zero allocations.
//   - Instrumentation only observes. Engines must never consult a metric
//     to make a decision, so enabling metrics cannot change the number of
//     states explored.
//
// Metric names are dot-separated and prefixed by the owning package
// ("core.states", "bdd.cache_hits"); OBSERVABILITY.md lists them all.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Create counters through
// Registry.Counter; a nil *Counter is valid and all its methods are
// no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions or track a peak.
// Create gauges through Registry.Gauge; a nil *Gauge is valid and all its
// methods are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger than the current value —
// the idiom for peak tracking (peak queue depth, peak node count).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds the metrics of one run, keyed by name. The zero value is
// not usable; construct with New. A nil *Registry is valid: every
// accessor returns a nil metric whose methods are no-ops, which is how
// engines run uninstrumented at full speed.
type Registry struct {
	clock Clock // nil = wall clock

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
}

// New returns an empty registry using the wall clock.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// NewWithClock returns an empty registry whose spans and snapshots read
// the given clock — used by tests to make time deterministic.
func NewWithClock(c Clock) *Registry {
	r := New()
	r.clock = c
	return r
}

func (r *Registry) now() time.Time {
	if r.clock != nil {
		return r.clock.Now()
	}
	return time.Now()
}

// Counter returns the counter registered under name, creating it on first
// use. Callers should hoist the lookup out of hot loops and hold the
// *Counter. Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}
