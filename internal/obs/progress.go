package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Clock abstracts time.Now so progress reporting and span timing are
// testable with a fake clock.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock is the wall clock.
var SystemClock Clock = systemClock{}

// FakeClock is a manually advanced clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake time forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Update is one progress report.
type Update struct {
	Label   string
	Count   int64
	Elapsed time.Duration
	// Rate is Count per second of Elapsed (0 when Elapsed is 0).
	Rate float64
	// Final marks the report emitted by Done.
	Final bool
}

// Progress emits periodic liveness reports from a long-running
// exploration: every Every ticks, or whenever Interval has elapsed since
// the last report, whichever fires first. The zero thresholds disable
// their trigger; a nil *Progress disables everything, so engines tick
// unconditionally.
//
// Engines call Tick once per unit of work (one state, one event, one
// fixpoint iteration). Reports go to the Report callback if set,
// otherwise as a text line to W (default os.Stderr).
type Progress struct {
	Label    string
	Every    int64         // report each time this many more ticks arrive (0 = off)
	Interval time.Duration // report when this much time passed since the last report (0 = off)
	Clock    Clock         // nil = wall clock
	Report   func(Update)  // nil = write text to W
	W        io.Writer     // nil = os.Stderr

	mu      sync.Mutex
	n       int64
	started time.Time
	last    time.Time
	nextAt  int64
}

func (p *Progress) now() time.Time {
	if p.Clock != nil {
		return p.Clock.Now()
	}
	return time.Now()
}

// Tick records delta units of work and emits a report if a threshold was
// crossed. Safe on a nil *Progress.
func (p *Progress) Tick(delta int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.started.IsZero() {
		p.started = p.now()
		p.last = p.started
		p.nextAt = p.Every
	}
	p.n += delta
	fire := false
	if p.Every > 0 && p.n >= p.nextAt {
		fire = true
		p.nextAt = p.n + p.Every
	}
	var now time.Time
	if p.Interval > 0 || fire {
		now = p.now()
	}
	if !fire && p.Interval > 0 && now.Sub(p.last) >= p.Interval {
		fire = true
	}
	if !fire {
		p.mu.Unlock()
		return
	}
	p.last = now
	u := p.update(now, false)
	p.mu.Unlock()
	p.emit(u)
}

// Count returns the ticks seen so far.
func (p *Progress) Count() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Done emits a final report if any work was ticked. Safe on a nil
// *Progress.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.n == 0 {
		p.mu.Unlock()
		return
	}
	u := p.update(p.now(), true)
	p.mu.Unlock()
	p.emit(u)
}

func (p *Progress) update(now time.Time, final bool) Update {
	elapsed := now.Sub(p.started)
	u := Update{Label: p.Label, Count: p.n, Elapsed: elapsed, Final: final}
	if secs := elapsed.Seconds(); secs > 0 {
		u.Rate = float64(p.n) / secs
	}
	return u
}

func (p *Progress) emit(u Update) {
	if p.Report != nil {
		p.Report(u)
		return
	}
	w := p.W
	if w == nil {
		w = os.Stderr
	}
	label := u.Label
	if label == "" {
		label = "progress"
	}
	state := ""
	if u.Final {
		state = " (done)"
	}
	fmt.Fprintf(w, "%s: %d states in %v (%.0f/s)%s\n",
		label, u.Count, u.Elapsed.Round(time.Millisecond), u.Rate, state)
}
