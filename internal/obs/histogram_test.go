package obs

import "testing"

// TestQuantileExtremes pins the q=0/q=1 contract: the extremes come
// from the exactly-tracked Min/Max, not from bucket upper bounds.
func TestQuantileExtremes(t *testing.T) {
	cases := []struct {
		name string
		obs  []int64
		min  int64
		max  int64
	}{
		{"mid-bucket", []int64{5, 6, 7}, 5, 7},
		{"spread", []int64{3, 100, 1000}, 3, 1000},
		{"negative", []int64{-9, -1}, -9, -1},
		{"mixed-sign", []int64{-4, 0, 12}, -4, 12},
		{"single", []int64{42}, 42, 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(0); got != tc.min {
				t.Errorf("Quantile(0) = %d, want Min %d", got, tc.min)
			}
			if got := h.Quantile(1); got != tc.max {
				t.Errorf("Quantile(1) = %d, want Max %d", got, tc.max)
			}
			// Out-of-range q clamps to the same extremes.
			if got := h.Quantile(-0.5); got != tc.min {
				t.Errorf("Quantile(-0.5) = %d, want Min %d", got, tc.min)
			}
			if got := h.Quantile(1.5); got != tc.max {
				t.Errorf("Quantile(1.5) = %d, want Max %d", got, tc.max)
			}
		})
	}
}

// TestQuantileCeilRank pins the interior-quantile rank rule to the ceil
// nearest-rank definition rank = ⌈q·n⌉ — the same rule the run ledger's
// quantile uses (internal/obs/ledger), so the histogram view and the
// ledger summary of the same runs agree. Observations sit on bucket
// upper edges (7, 15, 31) so the bucketed answer is the exact rank-th
// value, with n = 1, 2, 3 at q = 0.5 and 0.9.
func TestQuantileCeilRank(t *testing.T) {
	cases := []struct {
		obs      []int64
		p50, p90 int64
	}{
		{[]int64{7}, 7, 7},           // n=1: rank 1 / rank 1
		{[]int64{7, 15}, 7, 15},      // n=2: ⌈1.0⌉=1 / ⌈1.8⌉=2
		{[]int64{7, 15, 31}, 15, 31}, // n=3: ⌈1.5⌉=2 / ⌈2.7⌉=3
	}
	for _, tc := range cases {
		h := newHistogram()
		for _, v := range tc.obs {
			h.Observe(v)
		}
		if got := h.Quantile(0.5); got != tc.p50 {
			t.Errorf("n=%d: Quantile(0.5) = %d, want %d", len(tc.obs), got, tc.p50)
		}
		if got := h.Quantile(0.9); got != tc.p90 {
			t.Errorf("n=%d: Quantile(0.9) = %d, want %d", len(tc.obs), got, tc.p90)
		}
	}
}

// TestQuantilePowerOfTwoBoundaries pins bucket placement at exact
// powers of two: 2^k is the first value of bucket k+1 ([2^k, 2^(k+1)))
// and 2^k−1 the last of bucket k, so quantiles that land on either side
// of the boundary answer with the matching bucket's upper edge.
func TestQuantilePowerOfTwoBoundaries(t *testing.T) {
	cases := []struct {
		name string
		obs  []int64
		q    float64
		want int64
	}{
		// 63 = 2^6−1 is the top of bucket 6; 64 = 2^6 opens bucket 7.
		{"below-boundary", []int64{63, 63}, 0.5, 63},
		{"at-boundary", []int64{64, 64}, 0.5, 64},        // bucket 7 edge 127 clamped to max
		{"straddle-low", []int64{63, 64}, 0.5, 63},       // rank 1 falls in bucket 6
		{"straddle-high", []int64{63, 64}, 0.75, 64},     // rank 2 falls in bucket 7, clamped
		{"one", []int64{1}, 0.5, 1},                      // 1 = 2^0 opens bucket 1
		{"two", []int64{2}, 0.5, 2},                      // 2 = 2^1 opens bucket 2, edge 3 clamps
		{"big", []int64{1 << 40}, 0.5, 1 << 40},          // clamped to max
		{"zero", []int64{0}, 0.5, 0},                     // bucket 0 upper edge is 0
		{"negative-only", []int64{-8, -2}, 0.5, -2},      // bucket 0 clamped to max
		{"unclamped-upper", []int64{4, 5, 6, 7}, 0.5, 7}, // bucket 3 edge exactly
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) over %v = %d, want %d", tc.q, tc.obs, got, tc.want)
			}
		})
	}
}

// TestSnapshotBuckets checks the snapshot's additive buckets field:
// non-empty buckets only, correct inclusive upper edges, counts summing
// to Count.
func TestSnapshotBuckets(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{-1, 0, 1, 2, 3, 64, 64} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []HistogramBucket{
		{LE: 0, Count: 2},   // -1, 0
		{LE: 1, Count: 1},   // 1
		{LE: 3, Count: 2},   // 2, 3
		{LE: 127, Count: 2}, // 64, 64
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", s.Buckets, want)
	}
	var total int64
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("Buckets[%d] = %+v, want %+v", i, b, want[i])
		}
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want Count %d", total, s.Count)
	}
	if empty := newHistogram().snapshot(); empty.Buckets != nil {
		t.Errorf("empty histogram snapshot has buckets: %+v", empty.Buckets)
	}
}
