package reach

import (
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
)

// TestQueueMemoryBoundedByFrontier is the regression test for the BFS
// queue pinning its backing array: streaming many ids through a queue
// whose live window stays small must keep the backing capacity near the
// window size, not near the total number of ids ever enqueued. A queue
// that only advances a head index (or re-slices from the front) without
// compacting fails this.
func TestQueueMemoryBoundedByFrontier(t *testing.T) {
	const (
		total  = 100_000
		window = 100
	)
	var q intQueue
	for i := 0; i < total; i++ {
		q.push(i)
		if q.len() > window {
			if got := q.pop(); got != i-window {
				t.Fatalf("pop = %d, want %d (FIFO order broken)", got, i-window)
			}
		}
	}
	// Allow the 2x headroom of the compaction scheme plus append's growth
	// slack; anything near `total` means consumed slots accumulated.
	if q.spare() > 8*window+compactAt {
		t.Errorf("backing capacity = %d after %d pushes with a %d-wide window; consumed slots pinned",
			q.spare(), total, window)
	}
	for want := total - window; q.len() > 0; want++ {
		if got := q.pop(); got != want {
			t.Fatalf("drain pop = %d, want %d", got, want)
		}
	}
}

// TestQueuePeakAccounting pins that the queue refactor kept the
// reach.queue_peak gauge correct: for Fig1(3) (the 3-cube) the BFS
// frontier peaks at 4 pending states (the tail of level 1 plus the first
// two level-2 discoveries), and the gauge must never exceed the state
// count.
func TestQueuePeakAccounting(t *testing.T) {
	reg := obs.New()
	res, err := Explore(models.Fig1(3), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	peak := reg.Gauge("reach.queue_peak").Value()
	if peak != 4 {
		t.Errorf("reach.queue_peak = %d, want 4", peak)
	}
	if peak > int64(res.States) {
		t.Errorf("queue peak %d exceeds state count %d", peak, res.States)
	}
}
