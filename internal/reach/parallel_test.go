package reach

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/petri"
)

// sameResult asserts the parallel explorer reproduced the sequential
// Result bit for bit: counts, verdict lists in order, and the stored
// graph when present.
func sameResult(t *testing.T, name string, seq, par *Result) {
	t.Helper()
	if seq.States != par.States {
		t.Errorf("%s: states %d != %d", name, par.States, seq.States)
	}
	if seq.Arcs != par.Arcs {
		t.Errorf("%s: arcs %d != %d", name, par.Arcs, seq.Arcs)
	}
	if seq.Deadlock != par.Deadlock || seq.BadFound != par.BadFound || seq.Complete != par.Complete {
		t.Errorf("%s: flags (dead=%v bad=%v complete=%v) != (dead=%v bad=%v complete=%v)",
			name, par.Deadlock, par.BadFound, par.Complete, seq.Deadlock, seq.BadFound, seq.Complete)
	}
	sameMarkings(t, name+"/deadlocks", seq.Deadlocks, par.Deadlocks)
	sameMarkings(t, name+"/bad", seq.BadStates, par.BadStates)
	if (seq.Graph == nil) != (par.Graph == nil) {
		t.Fatalf("%s: graph presence differs", name)
	}
	if seq.Graph == nil {
		return
	}
	sameMarkings(t, name+"/graph.states", seq.Graph.States, par.Graph.States)
	if len(seq.Graph.Edges) != len(par.Graph.Edges) {
		t.Fatalf("%s: graph edges for %d states != %d", name, len(par.Graph.Edges), len(seq.Graph.Edges))
	}
	for id := range seq.Graph.Edges {
		se, pe := seq.Graph.Edges[id], par.Graph.Edges[id]
		if len(se) != len(pe) {
			t.Fatalf("%s: state %d has %d edges, want %d", name, id, len(pe), len(se))
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("%s: state %d edge %d is %+v, want %+v", name, id, i, pe[i], se[i])
			}
		}
	}
}

func sameMarkings(t *testing.T, name string, want, got []petri.Marking) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d markings != %d", name, len(got), len(want))
		return
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Errorf("%s: marking %d differs", name, i)
			return
		}
	}
}

// TestParallelMatchesSequential drives the parallel explorer at several
// worker counts over small models (with graphs and a Bad predicate) and
// requires results identical to Workers: 0.
func TestParallelMatchesSequential(t *testing.T) {
	nets := []*petri.Net{
		models.Fig1(3), models.Fig2(3), models.Fig3(), models.Fig7(),
		models.NSDP(4), models.ReadersWriters(4), models.Overtake(3),
	}
	for _, net := range nets {
		bad := func(m petri.Marking) bool { return m.Has(petri.Place(0)) }
		seq, err := Explore(net, Options{StoreGraph: true, Bad: bad})
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			par, err := Explore(net, Options{StoreGraph: true, Bad: bad, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", net.Name(), w, err)
			}
			sameResult(t, net.Name(), seq, par)
		}
	}
}

// TestMaxStatesExact is the regression test for the off-by-one: a limit
// of N must admit exactly N states, sequentially and in parallel.
func TestMaxStatesExact(t *testing.T) {
	for _, w := range []int{0, 4} {
		res, err := Explore(models.NSDP(6), Options{MaxStates: 10, Workers: w})
		if !errors.Is(err, ErrStateLimit) {
			t.Fatalf("workers=%d: got %v, want ErrStateLimit", w, err)
		}
		if res.States != 10 {
			t.Errorf("workers=%d: MaxStates=10 admitted %d states, want exactly 10", w, res.States)
		}
		if res.Complete {
			t.Errorf("workers=%d: capped run must not report Complete", w)
		}
	}
}

// TestParallelMaxStatesMatchesSequential sweeps caps that stop the search
// mid-level and requires the parallel engine to reproduce the sequential
// stop point exactly, including arcs and the truncated graph.
func TestParallelMaxStatesMatchesSequential(t *testing.T) {
	net := models.NSDP(4) // 322 states
	for _, cap := range []int{1, 2, 7, 50, 321, 322} {
		seq, seqErr := Explore(net, Options{MaxStates: cap, StoreGraph: true})
		par, parErr := Explore(net, Options{MaxStates: cap, StoreGraph: true, Workers: 4})
		if !errors.Is(parErr, seqErr) && !(seqErr == nil && parErr == nil) {
			t.Fatalf("cap=%d: err %v != %v", cap, parErr, seqErr)
		}
		sameResult(t, net.Name(), seq, par)
	}
}

// TestParallelEarlyStopFallsBack pins that the latency-oriented early
// stops still behave exactly like the sequential engine when Workers is
// set (they route to the sequential path).
func TestParallelEarlyStopFallsBack(t *testing.T) {
	net := models.NSDP(4)
	seq, err := Explore(net, Options{StopAtDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(net, Options{StopAtDeadlock: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, net.Name(), seq, par)
	if par.Complete {
		t.Error("StopAtDeadlock run must stop early")
	}
}

// TestParallelUnsafeNet checks the parallel engine reports the same
// ErrUnsafe (same scan-order-first firing in the message) as the
// sequential one.
func TestParallelUnsafeNet(t *testing.T) {
	b := petri.NewBuilder("unsafe")
	p := b.Place("p")
	q := b.Place("q")
	r := b.Place("r")
	b.TransArcs("t1", []petri.Place{p}, []petri.Place{r})
	b.TransArcs("t2", []petri.Place{q}, []petri.Place{r})
	b.Mark(p, q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, seqErr := Explore(n, Options{})
	if !errors.Is(seqErr, ErrUnsafe) {
		t.Fatalf("sequential: got %v, want ErrUnsafe", seqErr)
	}
	_, parErr := Explore(n, Options{Workers: 4})
	if !errors.Is(parErr, ErrUnsafe) {
		t.Fatalf("parallel: got %v, want ErrUnsafe", parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error message differs:\n  seq: %s\n  par: %s", seqErr, parErr)
	}
}

// TestParallelMetrics checks the parallel-only metrics are exported and
// the shared ones match the sequential run's.
func TestParallelMetrics(t *testing.T) {
	net := models.NSDP(4)
	seqReg := obs.New()
	if _, err := Explore(net, Options{Metrics: seqReg}); err != nil {
		t.Fatal(err)
	}
	parReg := obs.New()
	if _, err := Explore(net, Options{Metrics: parReg, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"reach.states", "reach.arcs", "reach.deadlocks"} {
		if s, p := seqReg.Counter(name).Value(), parReg.Counter(name).Value(); s != p {
			t.Errorf("%s: parallel %d != sequential %d", name, p, s)
		}
	}
	if got := parReg.Gauge("reach.workers").Value(); got != 4 {
		t.Errorf("reach.workers = %d, want 4", got)
	}
	if parReg.Gauge("reach.shards").Value() == 0 {
		t.Error("reach.shards not exported")
	}
	if parReg.Counter("reach.batches").Value() == 0 {
		t.Error("reach.batches not exported")
	}
	if seqReg.Gauge("reach.queue_peak").Value() == 0 {
		t.Error("sequential reach.queue_peak lost")
	}
	if parReg.Gauge("reach.queue_peak").Value() == 0 {
		t.Error("parallel reach.queue_peak (peak level size) lost")
	}
}
