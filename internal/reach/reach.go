// Package reach implements conventional reachability analysis of safe Petri
// nets (Section 2.2 of the paper): exhaustive enumeration of the reachable
// markings, deadlock detection, safety-predicate checking and liveness
// queries over the full reachability graph RG(N).
//
// This engine is the ground truth the reduced analyses (internal/stubborn,
// internal/symbolic, internal/core) are validated against, and it produces
// the "States" column of Table 1. Exploration is breadth-first; setting
// Options.Workers > 0 switches to the parallel frontier-batch explorer
// (parallel.go), which produces bit-identical Results.
package reach

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/petri"
	"repro/internal/stop"
)

// ErrStateLimit is returned when exploration would exceed Options.MaxStates.
var ErrStateLimit = errors.New("reach: state limit exceeded")

// ErrUnsafe is returned when a firing would place a second token on a
// place; the net then violates the paper's safety (1-boundedness)
// assumption and none of the analyses apply.
var ErrUnsafe = errors.New("reach: net is not safe")

// Options configures an exploration.
type Options struct {
	// Ctx, if non-nil, is polled cooperatively during the search: once it
	// is cancelled (deadline, client disconnect) the exploration stops
	// within a bounded number of states and Explore returns the partial
	// Result so far (Complete: false) together with the context's error.
	// A nil Ctx costs one branch per state and never stops anything.
	Ctx context.Context
	// MaxStates caps the search at exactly this many distinct states; the
	// search stops with ErrStateLimit when one more would be interned, and
	// the firing that would have exceeded the cap is not recorded (no arc,
	// no edge). Zero means no limit.
	MaxStates int
	// Workers selects the parallel frontier-batch explorer with that many
	// worker goroutines; 0 preserves the classical sequential BFS. The
	// parallel explorer returns Results identical to Workers: 0 — same
	// States, Arcs, Deadlocks/BadStates order and Graph — by merging each
	// BFS level's discoveries in deterministic (parent, transition) order.
	// StopAtDeadlock and StopAtBad are latency-oriented early exits whose
	// stop point is inherently scan-order-dependent, so those runs always
	// use the sequential path regardless of Workers. When Workers > 0 the
	// Bad predicate may be called from multiple goroutines and must be
	// safe for concurrent use.
	Workers int
	// StopAtDeadlock halts the search at the first deadlock found.
	StopAtDeadlock bool
	// StoreGraph retains the full reachability graph in the result; needed
	// for liveness queries and DOT export.
	StoreGraph bool
	// Bad, if non-nil, is a safety predicate: exploration records (and with
	// StopAtBad halts at) markings for which Bad returns true.
	Bad func(petri.Marking) bool
	// StopAtBad halts the search at the first Bad marking.
	StopAtBad bool
	// Metrics, if non-nil, receives exploration statistics under the
	// "reach." prefix (see OBSERVABILITY.md). Nil costs nothing.
	Metrics *obs.Registry
	// Progress, if non-nil, is ticked once per distinct state found.
	Progress *obs.Progress
	// Trace, if non-nil, records flight-recorder events: one state event
	// per interned marking, one fire event per explored arc, phase
	// brackets, and a terminal abort event on cancellation. The parallel
	// explorer records firings on one track per worker. Nil costs one
	// branch per event.
	Trace *trace.Tracer
	// Ckpt, if non-nil, enables checkpointing: the hook is polled at
	// every BFS level boundary and can save a Snapshot (CkptSave) or
	// save one and suspend the run (CkptStop, returning the partial
	// Result with ErrCheckpointStop). Incompatible with StoreGraph.
	// Like Metrics and Trace, the hook only observes and suspends — it
	// never changes which states an uninterrupted run explores.
	Ckpt *CkptHook
	// Resume, if non-nil, restores the exploration from a Snapshot
	// instead of starting at the initial marking; both the sequential
	// and the parallel engine re-enter at the saved level boundary and
	// produce Results bit-identical to the uninterrupted run.
	// Incompatible with StoreGraph.
	Resume *Snapshot
}

// Edge is one arc of the reachability graph: firing T from the source
// state leads to state To.
type Edge struct {
	T  petri.Trans
	To int
}

// Graph is an explicitly stored reachability graph. States[0] is the
// initial marking.
type Graph struct {
	Net    *petri.Net
	States []petri.Marking
	Edges  [][]Edge
}

// Result summarizes an exploration.
type Result struct {
	States    int  // number of distinct reachable markings found
	Arcs      int  // number of firings explored
	Deadlock  bool // a reachable marking enables no transition
	Deadlocks []petri.Marking
	BadFound  bool // Options.Bad held in some reachable marking
	BadStates []petri.Marking
	Graph     *Graph // non-nil iff Options.StoreGraph
	Complete  bool   // false if the search stopped early
}

// Explore enumerates the reachable markings of n breadth-first. With
// Options.Workers > 0 (and no early-stop option) each BFS level is
// explored by a pool of workers over a sharded visited store; the Result
// is identical to the sequential one.
func Explore(n *petri.Net, opts Options) (*Result, error) {
	if err := validateCkptOptions(opts); err != nil {
		return nil, err
	}
	if opts.Workers > 0 && !opts.StopAtDeadlock && !opts.StopAtBad {
		return exploreParallel(n, opts)
	}
	return exploreSeq(n, opts)
}

// exploreSeq is the classical sequential BFS, kept as the Workers: 0 path
// and as the reference the parallel explorer must reproduce exactly.
func exploreSeq(n *petri.Net, opts Options) (*Result, error) {
	defer opts.Metrics.StartSpan("reach.explore").End()
	res := &Result{Complete: true}
	var qPeak int
	if opts.Metrics != nil {
		// Exported once on the way out (every return path) rather than
		// incremented per event: the per-state work of this engine is a
		// hash insert, so even uncontended atomics would be measurable.
		defer func() {
			reg := opts.Metrics
			reg.Counter("reach.states").Add(int64(res.States))
			reg.Counter("reach.arcs").Add(int64(res.Arcs))
			reg.Counter("reach.deadlocks").Add(int64(len(res.Deadlocks)))
			reg.Counter("reach.bad_states").Add(int64(len(res.BadStates)))
			reg.Gauge("reach.queue_peak").SetMax(int64(qPeak))
		}()
	}
	tk := opts.Trace.NewTrack("reach")
	phExplore := opts.Trace.Intern("explore")
	tk.Begin(phExplore)
	var g *Graph
	if opts.StoreGraph {
		g = &Graph{Net: n}
		res.Graph = g
	}

	index := make(map[string]int)
	var states []petri.Marking
	limited := false
	// Verdict ids mirror res.Deadlocks/res.BadStates for the snapshot;
	// maintained unconditionally (two appends per verdict is noise next
	// to the per-state hash insert).
	var deadIDs, badIDs []int

	add := func(m petri.Marking) (int, bool) {
		k := m.Key()
		if id, ok := index[k]; ok {
			return id, false
		}
		if opts.MaxStates > 0 && len(states) >= opts.MaxStates {
			limited = true
			return -1, false
		}
		id := len(states)
		index[k] = id
		states = append(states, m)
		if opts.StoreGraph {
			g.Edges = append(g.Edges, nil)
		}
		opts.Progress.Tick(1)
		tk.State(int64(id), 0)
		return id, true
	}

	checkState := func(id int) (stop bool) {
		m := states[id]
		if opts.Bad != nil && opts.Bad(m) {
			res.BadFound = true
			res.BadStates = append(res.BadStates, m)
			badIDs = append(badIDs, id)
			if opts.StopAtBad {
				return true
			}
		}
		if n.IsDeadlock(m) {
			res.Deadlock = true
			res.Deadlocks = append(res.Deadlocks, m)
			deadIDs = append(deadIDs, id)
			if opts.StopAtDeadlock {
				return true
			}
		}
		return false
	}

	var queue intQueue
	// levelEnd is the id at which the next level boundary fires: once
	// the BFS is about to pop it, every state below it has been expanded
	// and the states from it onward are exactly the unexpanded frontier.
	// levels counts boundaries passed = fully expanded levels.
	levelEnd := 0
	levels := 0

	if sn := opts.Resume; sn != nil {
		if err := validateResume(n, sn); err != nil {
			return nil, err
		}
		states = append(states, sn.States...)
		for id, m := range states {
			k := m.Key()
			if _, dup := index[k]; dup {
				return nil, fmt.Errorf("reach: resume: duplicate marking at state %d", id)
			}
			index[k] = id
		}
		res.Arcs = sn.Arcs
		restoreVerdicts(res, states, sn)
		deadIDs = append(deadIDs, sn.DeadIDs...)
		badIDs = append(badIDs, sn.BadIDs...)
		for id := sn.FrontierStart; id < len(states); id++ {
			queue.push(id)
		}
		// The restored frontier is level number sn.Levels; the next
		// boundary — after expanding it — has sn.Levels+1 levels done.
		levelEnd = len(states)
		levels = sn.Levels + 1
		opts.Progress.Tick(int64(len(states)))
	} else {
		m0 := n.InitialMarking()
		add(m0)
		queue.push(0)
		if checkState(0) {
			res.States = len(states)
			res.Complete = false
			if opts.StoreGraph {
				g.States = states
			}
			return res, nil
		}
	}

	cancel := stop.Every(opts.Ctx, 64)
	for queue.len() > 0 {
		if next := queue.peek(); next >= levelEnd {
			if act := opts.Ckpt.poll(len(states), levels); act != CkptNone {
				sn := snapshotAt(states, next, res.Arcs, deadIDs, badIDs, levels)
				if opts.Ckpt.Save != nil {
					if err := opts.Ckpt.Save(sn); err != nil {
						return nil, fmt.Errorf("reach: checkpoint save: %w", err)
					}
				}
				if act == CkptStop {
					res.States = len(states)
					res.Complete = false
					return res, ErrCheckpointStop
				}
			}
			levels++
			levelEnd = len(states)
		}
		if err := cancel.Poll(); err != nil {
			res.States = len(states)
			res.Complete = false
			if opts.StoreGraph {
				g.States = states
			}
			tk.Abort(opts.Trace.Intern(err.Error()))
			return res, fmt.Errorf("reach: aborted: %w", err)
		}
		id := queue.pop()
		m := states[id]
		for t := petri.Trans(0); int(t) < n.NumTrans(); t++ {
			if !n.Enabled(m, t) {
				continue
			}
			next, safe := n.Fire(m, t)
			if !safe {
				return nil, fmt.Errorf("%w: firing %s from %s double-marks a place",
					ErrUnsafe, n.TransName(t), m.String(n))
			}
			nid, fresh := add(next)
			if limited {
				res.States = len(states)
				res.Complete = false
				if opts.StoreGraph {
					g.States = states
				}
				return res, ErrStateLimit
			}
			res.Arcs++
			tk.Fire(int64(t), int64(nid))
			if opts.StoreGraph {
				g.Edges[id] = append(g.Edges[id], Edge{T: t, To: nid})
			}
			if fresh {
				if checkState(nid) {
					res.States = len(states)
					res.Complete = false
					if opts.StoreGraph {
						g.States = states
					}
					return res, nil
				}
				queue.push(nid)
				if live := queue.len(); live > qPeak {
					qPeak = live
				}
			}
		}
	}

	res.States = len(states)
	if opts.StoreGraph {
		g.States = states
	}
	tk.End(phExplore)
	return res, nil
}

// CountStates is a convenience that returns just the size of the full
// reachable state space.
func CountStates(n *petri.Net) (int, error) {
	r, err := Explore(n, Options{})
	if err != nil {
		return 0, err
	}
	return r.States, nil
}
