package reach

// QuasiLive returns, for each transition, whether it fires on at least one
// arc of the stored reachability graph (L1-liveness).
func (g *Graph) QuasiLive() []bool {
	out := make([]bool, g.Net.NumTrans())
	for _, es := range g.Edges {
		for _, e := range es {
			out[e.T] = true
		}
	}
	return out
}

// Live reports, for each transition t, whether t is live in the classical
// sense: from every reachable marking, some marking enabling t remains
// reachable. It is computed as a backward closure, per transition, over the
// reversed reachability graph from the states that fire t.
func (g *Graph) Live() []bool {
	nT := g.Net.NumTrans()
	nS := len(g.States)
	rev := make([][]int, nS)
	firesAt := make([][]int, nT) // states with an outgoing t-arc
	for s, es := range g.Edges {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], s)
			firesAt[e.T] = append(firesAt[e.T], s)
		}
	}
	out := make([]bool, nT)
	mark := make([]bool, nS)
	for t := 0; t < nT; t++ {
		if len(firesAt[t]) == 0 {
			continue // dead transition
		}
		for i := range mark {
			mark[i] = false
		}
		stack := append([]int(nil), firesAt[t]...)
		covered := 0
		for _, s := range stack {
			if !mark[s] {
				mark[s] = true
				covered++
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range rev[s] {
				if !mark[p] {
					mark[p] = true
					covered++
					stack = append(stack, p)
				}
			}
		}
		out[t] = covered == nS
	}
	return out
}

// SCCs returns the strongly connected components of the stored graph in
// reverse topological order (Tarjan's algorithm, iterative).
func (g *Graph) SCCs() [][]int {
	n := len(g.States)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		index[root], low[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(g.Edges[v]) {
				w := g.Edges[v][f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// TerminalSCCs returns the SCCs with no edge leaving the component.
func (g *Graph) TerminalSCCs() [][]int {
	sccs := g.SCCs()
	comp := make([]int, len(g.States))
	for i, c := range sccs {
		for _, s := range c {
			comp[s] = i
		}
	}
	var out [][]int
	for i, c := range sccs {
		terminal := true
	scan:
		for _, s := range c {
			for _, e := range g.Edges[s] {
				if comp[e.To] != i {
					terminal = false
					break scan
				}
			}
		}
		if terminal {
			out = append(out, c)
		}
	}
	return out
}
