package reach

// Checkpoint and resume for the reachability explorers.
//
// Both engines are level-synchronous with deterministically assigned
// state ids (the sequential BFS trivially, the parallel explorer through
// the (parent, transition)-ordered level merge in merge.go), so a BFS
// level boundary is a complete, canonical description of the run so far:
// the interned markings in id order, the contiguous frontier suffix that
// has been discovered but not expanded, the arc count, and the verdict
// lists over all interned states. A run restored from such a Snapshot —
// by either engine — explores exactly the states the uninterrupted run
// would have, which is what makes kill-and-resume bit-identical
// (TestResumeBitIdentical) and deterministic prefix replay sound.

import (
	"errors"
	"fmt"

	"repro/internal/petri"
)

// ErrCheckpointStop is returned (with the partial Result so far) when a
// checkpoint hook answers CkptStop at a level boundary: the run was
// suspended cleanly after saving a Snapshot, not aborted mid-level.
var ErrCheckpointStop = errors.New("reach: stopped at checkpoint")

// Snapshot is the canonical state of an exploration at a BFS level
// boundary. States holds every interned marking in id order; the
// frontier — discovered during the last expanded level, not yet
// expanded — is the contiguous suffix States[FrontierStart:]. DeadIDs
// and BadIDs are the ids (ascending) behind Result.Deadlocks and
// Result.BadStates, covering all interned states: verdicts are recorded
// at discovery time, so a level boundary never owes any.
type Snapshot struct {
	States        []petri.Marking
	FrontierStart int
	Arcs          int
	DeadIDs       []int
	BadIDs        []int
	// Levels counts the fully expanded BFS levels: the boundary this
	// snapshot was taken at sits before expanding level number Levels.
	// It is the deterministic stop coordinate used by replay.
	Levels int
}

// CkptAction is a checkpoint hook's verdict at a level boundary.
type CkptAction int

const (
	// CkptNone continues without checkpointing.
	CkptNone CkptAction = iota
	// CkptSave saves a Snapshot and continues.
	CkptSave
	// CkptStop saves a Snapshot and suspends the run: Explore returns
	// the partial Result with ErrCheckpointStop.
	CkptStop
)

// CkptHook enables checkpointing: Poll is consulted at every BFS level
// boundary with the interned state count and expanded level count, and
// Save receives the Snapshot when Poll answers CkptSave or CkptStop.
// The Snapshot's slices are fresh copies; Save may retain them. A Save
// error fails the exploration.
type CkptHook struct {
	Poll func(states, levels int) CkptAction
	Save func(*Snapshot) error
}

// poll is the nil-safe hook invocation shared by both engines.
func (h *CkptHook) poll(states, levels int) CkptAction {
	if h == nil || h.Poll == nil {
		return CkptNone
	}
	return h.Poll(states, levels)
}

// validateCkptOptions rejects option combinations the checkpoint layer
// does not describe: a stored graph is not part of the Snapshot, so a
// resumed run could not rebuild it.
func validateCkptOptions(opts Options) error {
	if opts.StoreGraph && (opts.Ckpt != nil || opts.Resume != nil) {
		return fmt.Errorf("reach: checkpoint/resume does not support StoreGraph")
	}
	return nil
}

// validateResume sanity-checks a Snapshot against the net before any of
// it is trusted: marking widths, frontier bounds, verdict id ranges and
// id-order verdict lists. Content integrity (bit flips) is the
// checkpoint container's job (internal/ckpt); this guards the engine
// against structurally impossible snapshots.
func validateResume(n *petri.Net, sn *Snapshot) error {
	if len(sn.States) == 0 {
		return fmt.Errorf("reach: resume: snapshot has no states")
	}
	if sn.FrontierStart < 0 || sn.FrontierStart > len(sn.States) {
		return fmt.Errorf("reach: resume: frontier start %d out of range [0,%d]", sn.FrontierStart, len(sn.States))
	}
	if sn.Arcs < 0 || sn.Levels < 0 {
		return fmt.Errorf("reach: resume: negative counters")
	}
	words := (n.NumPlaces() + 63) / 64
	for id, m := range sn.States {
		if len(m) != words {
			return fmt.Errorf("reach: resume: state %d has %d marking words, net needs %d", id, len(m), words)
		}
	}
	for name, ids := range map[string][]int{"dead": sn.DeadIDs, "bad": sn.BadIDs} {
		prev := -1
		for _, id := range ids {
			if id < 0 || id >= len(sn.States) {
				return fmt.Errorf("reach: resume: %s id %d out of range", name, id)
			}
			if id <= prev {
				return fmt.Errorf("reach: resume: %s ids not strictly increasing", name)
			}
			prev = id
		}
	}
	return nil
}

// snapshotAt assembles a Snapshot from the engine-side run state. The
// verdict id lists are copied; the markings slice is copied shallowly
// (markings are immutable once interned).
func snapshotAt(states []petri.Marking, frontierStart, arcs int, deadIDs, badIDs []int, levels int) *Snapshot {
	return &Snapshot{
		States:        append([]petri.Marking(nil), states...),
		FrontierStart: frontierStart,
		Arcs:          arcs,
		DeadIDs:       append([]int(nil), deadIDs...),
		BadIDs:        append([]int(nil), badIDs...),
		Levels:        levels,
	}
}

// restoreVerdicts fills the Result's verdict lists from a snapshot's id
// lists against the restored states.
func restoreVerdicts(res *Result, states []petri.Marking, sn *Snapshot) {
	if len(sn.DeadIDs) > 0 {
		res.Deadlock = true
		for _, id := range sn.DeadIDs {
			res.Deadlocks = append(res.Deadlocks, states[id])
		}
	}
	if len(sn.BadIDs) > 0 {
		res.BadFound = true
		for _, id := range sn.BadIDs {
			res.BadStates = append(res.BadStates, states[id])
		}
	}
}
