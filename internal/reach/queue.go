package reach

// intQueue is the sequential BFS frontier: a FIFO of state ids backed by
// one slice with a head index. Consumed slots are reclaimed by shifting
// the live window down once more than half the backing array is spent,
// so the queue's memory stays proportional to the peak frontier. The
// previous `queue = queue[1:]` idiom kept the array allocated at the
// frontier's peak pinned — consumed prefix included — for the rest of
// the run.
type intQueue struct {
	buf  []int
	head int
}

// compactAt bounds how many consumed slots may accumulate before a
// compaction is considered; below it the copy is not worth the bother.
const compactAt = 32

func (q *intQueue) push(v int) { q.buf = append(q.buf, v) }

func (q *intQueue) pop() int {
	v := q.buf[q.head]
	q.head++
	if q.head > compactAt && q.head > len(q.buf)/2 {
		q.buf = q.buf[:copy(q.buf, q.buf[q.head:])]
		q.head = 0
	}
	return v
}

func (q *intQueue) len() int { return len(q.buf) - q.head }

// peek returns the next value pop would return without consuming it;
// the sequential BFS uses it to detect level boundaries (state ids are
// popped in increasing order, so the boundary is visible before the
// first state of a level is expanded).
func (q *intQueue) peek() int { return q.buf[q.head] }

// spare reports the backing array's capacity, for tests pinning that the
// queue does not accumulate consumed slots.
func (q *intQueue) spare() int { return cap(q.buf) }
