package reach

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/petri"
)

func TestFig1FullGraph(t *testing.T) {
	res, err := Explore(models.Fig1(3), Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 8 {
		t.Fatalf("states=%d want 8", res.States)
	}
	if res.Arcs != 12 { // each of 8 cube vertices has (3 - popcount) arcs: 3*2^2
		t.Errorf("arcs=%d want 12", res.Arcs)
	}
	if !res.Deadlock {
		t.Error("terminal state is a deadlock")
	}
	if len(res.Graph.States) != 8 {
		t.Error("graph not stored")
	}
}

func TestStateLimit(t *testing.T) {
	_, err := Explore(models.NSDP(6), Options{MaxStates: 10})
	if !errors.Is(err, ErrStateLimit) {
		t.Errorf("got %v, want ErrStateLimit", err)
	}
}

func TestStopAtDeadlock(t *testing.T) {
	res, err := Explore(models.NSDP(4), Options{StopAtDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock || res.Complete {
		t.Error("expected early stop at a deadlock")
	}
	if res.States >= 322 {
		t.Errorf("explored %d states, should stop early", res.States)
	}
}

func TestUnsafeNetReported(t *testing.T) {
	b := petri.NewBuilder("unsafe")
	p := b.Place("p")
	q := b.Place("q")
	r := b.Place("r")
	b.TransArcs("t1", []petri.Place{p}, []petri.Place{r})
	b.TransArcs("t2", []petri.Place{q}, []petri.Place{r})
	b.Mark(p, q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(n, Options{}); !errors.Is(err, ErrUnsafe) {
		t.Errorf("got %v, want ErrUnsafe", err)
	}
}

func TestBadPredicate(t *testing.T) {
	net := models.NSDP(2)
	hasL0, _ := net.PlaceByName("hasL0")
	hasL1, _ := net.PlaceByName("hasL1")
	res, err := Explore(net, Options{Bad: func(m petri.Marking) bool {
		return m.Has(hasL0) && m.Has(hasL1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BadFound || len(res.BadStates) == 0 {
		t.Fatal("the all-left state must be found")
	}
	// With StopAtBad, search stops early.
	res2, err := Explore(net, Options{
		Bad:       func(m petri.Marking) bool { return m.Has(hasL0) },
		StopAtBad: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.BadFound || res2.Complete {
		t.Error("StopAtBad must stop the search")
	}
}

func TestLiveness(t *testing.T) {
	// RW is live: every transition fires from everywhere eventually.
	res, err := Explore(models.ReadersWriters(2), Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	for tr, live := range res.Graph.Live() {
		if !live {
			t.Errorf("RW(2): transition %d not live", tr)
		}
	}
	// Fig2 terminates: nothing is live, everything quasi-live.
	res2, err := Explore(models.Fig2(2), Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	for tr, live := range res2.Graph.Live() {
		if live {
			t.Errorf("Fig2(2): transition %d cannot be live", tr)
		}
	}
	for tr, ql := range res2.Graph.QuasiLive() {
		if !ql {
			t.Errorf("Fig2(2): transition %d must be quasi-live", tr)
		}
	}
}

func TestSCCs(t *testing.T) {
	// RW's reachability graph is one SCC (fully cyclic).
	res, err := Explore(models.ReadersWriters(2), Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	sccs := res.Graph.SCCs()
	if len(sccs) != 1 {
		t.Errorf("RW(2): %d SCCs, want 1", len(sccs))
	}
	term := res.Graph.TerminalSCCs()
	if len(term) != 1 {
		t.Errorf("RW(2): %d terminal SCCs, want 1", len(term))
	}
	// Fig2(2): all states are their own SCC; terminal ones are deadlocks.
	res2, err := Explore(models.Fig2(2), Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res2.Graph.SCCs()); got != 9 {
		t.Errorf("Fig2(2): %d SCCs, want 9", got)
	}
	if got := len(res2.Graph.TerminalSCCs()); got != 4 {
		t.Errorf("Fig2(2): %d terminal SCCs, want 4 (the 2x2 resolutions)", got)
	}
}
