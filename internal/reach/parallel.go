package reach

// Parallel frontier-batch exploration. Each BFS level is a batch of
// already-interned states fanned out to a pool of workers; successor
// generation is pure (petri.Fire on value markings), so the only shared
// mutable structure is the visited store, which is split into hash-indexed
// shards with per-shard mutexes so interning does not serialize.
//
// Determinism is recovered at the level boundary: workers record every
// firing they examine under the order key (parent position in the level,
// transition id), first-claim newly seen markings in the shards as pending
// discoveries, and min-combine order keys when several workers reach the
// same new marking. After the level's barrier the discoveries are sorted
// by order key and assigned state ids — exactly the order the sequential
// BFS first encounters them — so States, Arcs, Deadlocks/BadStates order,
// the stored Graph, and even the stop points of MaxStates and ErrUnsafe
// reproduce the Workers: 0 run bit for bit. The order-key sort and the
// stop-point arithmetic live in merge.go, shared with the distributed
// cluster explorer (internal/cluster).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
	"repro/internal/petri"
)

// numShards aliases the exported constant; see merge.go.
const numShards = NumShards

// shard is one slice of the visited store: established markings in ids,
// markings first seen during the current level in pend.
type shard struct {
	mu   sync.Mutex
	ids  map[string]int
	pend map[string]*Discovery
	_    [40]byte // pad to a 64-byte cache line so shards don't false-share
}

// succRef is one examined firing: either the target was already interned
// (id >= 0) or it is pending and disc carries the id after the merge.
type succRef struct {
	t    petri.Trans
	id   int
	disc *Discovery
}

// violation records an unsafe firing so the merge can report the
// scan-order-first one with the same error as the sequential engine.
type violation struct {
	order uint64
	t     petri.Trans
	m     petri.Marking
}

// exploreParallel is the Workers > 0 path of Explore. Early-stop options
// are routed to the sequential engine before this is called.
func exploreParallel(n *petri.Net, opts Options) (*Result, error) {
	defer opts.Metrics.StartSpan("reach.explore").End()
	res := &Result{Complete: true}
	var (
		qPeak      int
		batches    int64
		contention int64
	)
	hBatch := opts.Metrics.Histogram("reach.batch_sizes")
	if opts.Metrics != nil {
		// Same export-once-on-exit discipline as the sequential engine,
		// plus the parallel-only worker/batch/shard metrics.
		defer func() {
			reg := opts.Metrics
			reg.Counter("reach.states").Add(int64(res.States))
			reg.Counter("reach.arcs").Add(int64(res.Arcs))
			reg.Counter("reach.deadlocks").Add(int64(len(res.Deadlocks)))
			reg.Counter("reach.bad_states").Add(int64(len(res.BadStates)))
			reg.Gauge("reach.queue_peak").SetMax(int64(qPeak))
			reg.Gauge("reach.workers").Set(int64(opts.Workers))
			reg.Gauge("reach.shards").Set(numShards)
			reg.Counter("reach.batches").Add(batches)
			reg.Counter("reach.shard_contention").Add(contention)
		}()
	}
	// The merge loop owns the "reach" track; each worker index owns its
	// own lane, so ring writes stay single-goroutine (the WaitGroup
	// barrier orders a worker's level-k writes before its level-k+1
	// goroutine reuses the track).
	tk := opts.Trace.NewTrack("reach")
	phExplore := opts.Trace.Intern("explore")
	tk.Begin(phExplore)
	var wtks []*trace.Track
	if opts.Trace != nil {
		wtks = make([]*trace.Track, opts.Workers)
		for wi := range wtks {
			wtks[wi] = opts.Trace.NewTrack(fmt.Sprintf("reach-w%d", wi))
		}
	}
	wtrack := func(wi int) *trace.Track {
		if wtks == nil {
			return nil
		}
		return wtks[wi]
	}
	var g *Graph
	if opts.StoreGraph {
		g = &Graph{Net: n}
		res.Graph = g
	}

	shards := make([]shard, numShards)
	for i := range shards {
		shards[i].ids = make(map[string]int)
		shards[i].pend = make(map[string]*Discovery)
	}

	var states []petri.Marking
	var level []int
	// levels counts fully expanded BFS levels: at the top of the loop,
	// `level` holds level number `levels`, exactly the boundary
	// coordinate of the sequential engine's snapshots. The verdict id
	// lists mirror res.Deadlocks/res.BadStates for checkpointing.
	levels := 0
	var deadIDs, badIDs []int
	// On resume the frontier's verdicts were restored from the snapshot,
	// so the first level's parent-verdict pass must not re-record them;
	// the resume point itself is the boundary the checkpoint was taken
	// at, so its poll is skipped too.
	skipParentVerdicts := false
	resumedBoundary := false

	if sn := opts.Resume; sn != nil {
		if err := validateResume(n, sn); err != nil {
			return nil, err
		}
		states = append(states, sn.States...)
		for id, m := range states {
			k, h := m.KeyHash()
			s := &shards[ShardOf(h)]
			if _, dup := s.ids[k]; dup {
				return nil, fmt.Errorf("reach: resume: duplicate marking at state %d", id)
			}
			s.ids[k] = id
		}
		res.Arcs = sn.Arcs
		restoreVerdicts(res, states, sn)
		deadIDs = append(deadIDs, sn.DeadIDs...)
		badIDs = append(badIDs, sn.BadIDs...)
		level = make([]int, 0, len(states)-sn.FrontierStart)
		for id := sn.FrontierStart; id < len(states); id++ {
			level = append(level, id)
		}
		levels = sn.Levels
		skipParentVerdicts = true
		resumedBoundary = true
		opts.Progress.Tick(int64(len(states)))
	} else {
		m0 := n.InitialMarking()
		k0, h0 := m0.KeyHash()
		shards[ShardOf(h0)].ids[k0] = 0
		states = append(states, m0)
		if opts.StoreGraph {
			g.Edges = append(g.Edges, nil)
		}
		opts.Progress.Tick(1)
		tk.State(0, 0)
		level = []int{0}
	}

	nt := n.NumTrans()

	// Per-level scratch, reused so steady-state exploration does not
	// reallocate with every batch.
	var (
		succs      [][]succRef
		deadFlags  []bool
		badFlags   []bool
		discovered []*Discovery
	)

	abort := func() (*Result, error) {
		res.States = len(states)
		res.Complete = false
		if opts.StoreGraph {
			g.States = states
		}
		tk.Abort(opts.Trace.Intern(opts.Ctx.Err().Error()))
		return res, fmt.Errorf("reach: aborted: %w", opts.Ctx.Err())
	}

	for len(level) > 0 {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return abort()
		}
		// Level boundary: every state below the frontier is expanded and
		// `level` is the contiguous id suffix about to be. The snapshot
		// must cover verdicts of ALL interned states the way the
		// sequential engine records them at discovery, so the frontier's
		// verdicts — which this engine only records when the states are
		// expanded as parents — are computed into the snapshot's copies
		// here without touching the live Result.
		if !resumedBoundary {
			if act := opts.Ckpt.poll(len(states), levels); act != CkptNone {
				sn := &Snapshot{
					States:        append([]petri.Marking(nil), states...),
					FrontierStart: len(states) - len(level),
					Arcs:          res.Arcs,
					DeadIDs:       append([]int(nil), deadIDs...),
					BadIDs:        append([]int(nil), badIDs...),
					Levels:        levels,
				}
				for _, id := range level {
					m := states[id]
					if opts.Bad != nil && opts.Bad(m) {
						sn.BadIDs = append(sn.BadIDs, id)
					}
					if n.IsDeadlock(m) {
						sn.DeadIDs = append(sn.DeadIDs, id)
					}
				}
				if opts.Ckpt.Save != nil {
					if err := opts.Ckpt.Save(sn); err != nil {
						return nil, fmt.Errorf("reach: checkpoint save: %w", err)
					}
				}
				if act == CkptStop {
					res.States = len(states)
					res.Complete = false
					return res, ErrCheckpointStop
				}
			}
		}
		resumedBoundary = false
		batches++
		if len(level) > qPeak {
			qPeak = len(level)
		}
		hBatch.Observe(int64(len(level)))

		if cap(succs) >= len(level) {
			succs = succs[:len(level)]
			deadFlags = deadFlags[:len(level)]
			badFlags = badFlags[:len(level)]
			for i := range succs {
				succs[i] = nil
				deadFlags[i] = false
				badFlags[i] = false
			}
		} else {
			succs = make([][]succRef, len(level))
			deadFlags = make([]bool, len(level))
			badFlags = make([]bool, len(level))
		}

		w := opts.Workers
		if w > len(level) {
			w = len(level)
		}
		workerDiscs := make([][]*Discovery, w)
		workerViols := make([]*violation, w)
		workerCont := make([]int64, w)

		var cursor atomic.Int64
		var wg sync.WaitGroup
		const chunk = 16
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				wt := wtrack(wi)
				var local []*Discovery
				var vio *violation
				var cont int64
				for {
					// One context check per chunk bounds the abort latency
					// of a worker to 16 states without a per-state Err call.
					if opts.Ctx != nil && opts.Ctx.Err() != nil {
						break
					}
					lo := int(cursor.Add(chunk)) - chunk
					if lo >= len(level) {
						break
					}
					hi := lo + chunk
					if hi > len(level) {
						hi = len(level)
					}
					for pos := lo; pos < hi; pos++ {
						m := states[level[pos]]
						enabled := 0
						var out []succRef
						for t := petri.Trans(0); int(t) < nt; t++ {
							if !n.Enabled(m, t) {
								continue
							}
							enabled++
							next, safe := n.Fire(m, t)
							order := OrderKey(pos, t)
							if !safe {
								if vio == nil || order < vio.order {
									vio = &violation{order: order, t: t, m: m}
								}
								continue
							}
							// The hash rides along from key construction:
							// no re-walk of the just-built string to route
							// the shard (and, in the cluster explorer, the
							// owning peer).
							key, hash := next.KeyHash()
							s := &shards[ShardOf(hash)]
							if !s.mu.TryLock() {
								cont++
								s.mu.Lock()
							}
							if id, ok := s.ids[key]; ok {
								s.mu.Unlock()
								out = append(out, succRef{t: t, id: id})
							} else if d, ok := s.pend[key]; ok {
								if order < d.Order {
									d.Order = order
								}
								s.mu.Unlock()
								out = append(out, succRef{t: t, id: -1, disc: d})
							} else {
								d := &Discovery{Key: key, Hash: hash, M: next, Order: order, ID: -1}
								s.pend[key] = d
								s.mu.Unlock()
								local = append(local, d)
								out = append(out, succRef{t: t, id: -1, disc: d})
							}
							// Target id is -1 for markings still pending the
							// level merge; the merge's state events carry the
							// definitive ids.
							wt.Fire(int64(t), int64(out[len(out)-1].id))
						}
						succs[pos] = out
						if enabled == 0 {
							deadFlags[pos] = true
						}
						if opts.Bad != nil && opts.Bad(m) {
							badFlags[pos] = true
						}
					}
				}
				workerDiscs[wi] = local
				workerViols[wi] = vio
				workerCont[wi] = cont
			}(wi)
		}
		wg.Wait()
		for _, c := range workerCont {
			contention += c
		}
		// A cancelled context makes workers bail mid-level, leaving the
		// per-position scratch only partially filled; merging it would
		// fabricate verdicts, so abort with the states of completed levels.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return abort()
		}

		// Verdicts of this level's parents. They were interned (and in the
		// sequential engine, checked) in id order before any state of the
		// next level, so appending here preserves the global id order of
		// the Deadlocks and BadStates lists. On the first level after a
		// resume the verdicts were already restored from the snapshot.
		if skipParentVerdicts {
			skipParentVerdicts = false
		} else {
			for pos, id := range level {
				if badFlags[pos] {
					res.BadFound = true
					res.BadStates = append(res.BadStates, states[id])
					badIDs = append(badIDs, id)
				}
				if deadFlags[pos] {
					res.Deadlock = true
					res.Deadlocks = append(res.Deadlocks, states[id])
					deadIDs = append(deadIDs, id)
				}
			}
		}

		discovered = discovered[:0]
		for _, local := range workerDiscs {
			discovered = append(discovered, local...)
		}
		SortDiscoveries(discovered)

		var vio *violation
		for _, v := range workerViols {
			if v != nil && (vio == nil || v.order < vio.order) {
				vio = v
			}
		}
		vioOrder := ^uint64(0)
		if vio != nil {
			vioOrder = vio.order
		}
		trigger, capped, unsafeFirst := PlanLevel(discovered, len(states), opts.MaxStates, vioOrder, vio != nil)
		if unsafeFirst {
			return nil, fmt.Errorf("%w: firing %s from %s double-marks a place",
				ErrUnsafe, n.TransName(vio.t), vio.m.String(n))
		}

		// Assign ids in first-encounter order; on the capped path only the
		// discoveries the sequential engine interned before its stop.
		nextLevel := make([]int, 0, len(discovered))
		for _, d := range discovered {
			if d.Order >= trigger {
				break
			}
			d.ID = len(states)
			states = append(states, d.M)
			shards[ShardOf(d.Hash)].ids[d.Key] = d.ID // workers are quiesced
			if opts.StoreGraph {
				g.Edges = append(g.Edges, nil)
			}
			opts.Progress.Tick(1)
			tk.State(int64(d.ID), 0)
			nextLevel = append(nextLevel, d.ID)
		}
		for i := range shards {
			clear(shards[i].pend)
		}

		// Count arcs and store edges; on the capped path only firings the
		// sequential scan examined strictly before the triggering one.
		for pos, list := range succs {
			for _, sr := range list {
				if capped && OrderKey(pos, sr.t) >= trigger {
					break // orders grow with t within a parent
				}
				res.Arcs++
				if opts.StoreGraph {
					to := sr.id
					if sr.disc != nil {
						to = sr.disc.ID
					}
					g.Edges[level[pos]] = append(g.Edges[level[pos]], Edge{T: sr.t, To: to})
				}
			}
		}

		if capped {
			// The fresh states interned above were checked at discovery by
			// the sequential engine before it hit the cap; reproduce that.
			for _, id := range nextLevel {
				m := states[id]
				if opts.Bad != nil && opts.Bad(m) {
					res.BadFound = true
					res.BadStates = append(res.BadStates, m)
					badIDs = append(badIDs, id)
				}
				if n.IsDeadlock(m) {
					res.Deadlock = true
					res.Deadlocks = append(res.Deadlocks, m)
					deadIDs = append(deadIDs, id)
				}
			}
			res.States = len(states)
			res.Complete = false
			if opts.StoreGraph {
				g.States = states
			}
			return res, ErrStateLimit
		}

		level = nextLevel
		levels++
	}

	res.States = len(states)
	if opts.StoreGraph {
		g.States = states
	}
	tk.End(phExplore)
	return res, nil
}
