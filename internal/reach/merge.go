package reach

// Exported batch/merge hooks of the parallel frontier-batch explorer.
//
// The deterministic level merge — sort this level's discoveries by
// (parent position, transition) order key, then cut the level at
// whichever comes first of an unsafe firing or the MaxStates+1'th
// intern — is the correctness contract that makes both the in-process
// parallel explorer (parallel.go) and the distributed cluster explorer
// (internal/cluster) bit-identical to the sequential BFS. Both engines
// call the same hooks below, so the contract cannot drift between them.

import (
	"sort"

	"repro/internal/petri"
)

// NumShards is the fan-out of the sharded visited store: a power of two
// well above any sensible worker count. The cluster explorer partitions
// these same 256 shards into per-peer ownership ranges, so one hash
// routes a state both to a goroutine's shard and to a network peer.
const NumShards = 256

// ShardOf maps a marking key hash (petri.Marking.KeyHash) onto a shard
// index. This is also the wire routing function of cluster frontier
// batches: owner(peer) = range containing ShardOf(hash).
func ShardOf(hash uint64) uint32 {
	return uint32(hash) & (NumShards - 1)
}

// OrderKey is the deterministic merge key of one examined firing: the
// parent's position in the current BFS level in the high bits, the
// transition index in the low bits — exactly the order the sequential
// BFS scans firings.
func OrderKey(pos int, t petri.Trans) uint64 {
	return uint64(pos)<<32 | uint64(uint32(t))
}

// OrderPos and OrderTrans decompose an OrderKey.
func OrderPos(order uint64) int           { return int(order >> 32) }
func OrderTrans(order uint64) petri.Trans { return petri.Trans(uint32(order)) }

// Discovery is a marking first reached during the current BFS level,
// claimed in a visited-store shard by the first worker (or peer) to see
// it. Order is the minimal OrderKey over all firings that reached it
// this level; ID stays -1 until the level merge assigns the definitive
// one.
type Discovery struct {
	Key   string
	Hash  uint64
	M     petri.Marking
	Order uint64
	ID    int
}

// SortDiscoveries orders a level's discoveries by merge key — the order
// the sequential BFS first encounters them. Keys are unique within a
// level (each pending marking is claimed in exactly one shard), so the
// sort is total.
func SortDiscoveries(ds []*Discovery) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Order < ds[j].Order })
}

// PlanLevel establishes a level's stop point before anything from it is
// committed. Given the sorted discoveries, the states interned so far,
// the MaxStates cap (0 = none) and the minimal unsafe-firing order key
// (hasVio reports whether one exists), it returns:
//
//   - trigger: the order key at which the sequential scan stops
//     (^uint64(0) when the whole level commits);
//   - capped: the MaxStates cap cuts this level — discoveries with
//     Order >= trigger are not interned, and arcs are only counted for
//     examined orders < trigger;
//   - unsafeFirst: the unsafe firing comes first in scan order, so the
//     caller must fail with ErrUnsafe instead of committing anything.
//
// This reproduces the sequential engine exactly: it stops at whichever
// comes first in its scan order, an unsafe firing or the firing that
// would intern state MaxStates+1.
func PlanLevel(sorted []*Discovery, statesSoFar, maxStates int, vioOrder uint64, hasVio bool) (trigger uint64, capped, unsafeFirst bool) {
	trigger = ^uint64(0)
	if maxStates > 0 && statesSoFar+len(sorted) > maxStates {
		capped = true
		trigger = sorted[maxStates-statesSoFar].Order
	}
	if hasVio && vioOrder < trigger {
		return trigger, capped, true
	}
	return trigger, capped, false
}
