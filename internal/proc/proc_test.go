package proc

import (
	"strings"
	"testing"

	"repro/internal/reach"
	"repro/internal/verify"
)

func TestParseBasics(t *testing.T) {
	spec, err := Parse(`
		# a comment
		proc p = a ; b ; (c + d) ; *( e )
		proc q = ( f || g ) ; skip
		system p q
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Procs) != 2 || len(spec.System) != 2 {
		t.Fatalf("spec structure wrong: %+v", spec)
	}
	body, ok := spec.Procs["p"].Body.(Seq)
	if !ok || len(body.Steps) != 4 {
		t.Fatalf("p body: %#v", spec.Procs["p"].Body)
	}
	if _, ok := body.Steps[2].(Choice); !ok {
		t.Error("third step of p must be a choice")
	}
	if _, ok := body.Steps[3].(Loop); !ok {
		t.Error("fourth step of p must be a loop")
	}
	if _, ok := spec.Procs["q"].Body.(Seq).Steps[0].(Par); !ok {
		t.Error("first step of q must be parallel")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no-system":      `proc p = a`,
		"undefined":      "proc p = a\nsystem p q",
		"dup-proc":       "proc p = a\nproc p = b\nsystem p",
		"single-bar":     "proc p = (a | b)\nsystem p",
		"bad-char":       "proc p = a$\nsystem p",
		"empty-system":   "proc p = a\nsystem",
		"missing-eq":     "proc p a\nsystem p",
		"missing-close":  "proc p = (a + b\nsystem p",
		"keyword-ident":  "proc proc = a\nsystem proc",
		"loop-no-parens": "proc p = * a\nsystem p",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestProducerConsumer(t *testing.T) {
	net := MustCompile(`
		proc producer = *( make ; !data )
		proc consumer = *( ?data ; use )
		system producer consumer
	`)
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Errorf("producer/consumer must not deadlock; witness %s",
			res.Deadlocks[0].String(net))
	}
	// The rendezvous exists and fires.
	if _, ok := net.TransByName("data:producer>consumer"); !ok {
		t.Error("missing rendezvous transition")
	}
}

func TestUnmatchedChannelBlocks(t *testing.T) {
	// The consumer waits on a channel nobody sends to: deadlock.
	net := MustCompile(`
		proc producer = *( make )
		proc consumer = ?data ; use
		system producer consumer
	`)
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Not a full deadlock (the producer loops), but "use" is unreachable.
	if res.Deadlock {
		t.Error("producer still loops; no total deadlock expected")
	}
	res2, err := reach.Explore(net, reach.Options{StoreGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	use, ok := net.TransByName("consumer.use")
	if !ok {
		t.Fatal("missing consumer.use")
	}
	if res2.Graph.QuasiLive()[use] {
		t.Error("use must be unreachable: the receive has no partner")
	}
}

func TestCrossedHandshakeDeadlocks(t *testing.T) {
	// The classic crossed rendezvous: each process wants to send first.
	net := MustCompile(`
		proc left  = !a ; ?b
		proc right = !b ; ?a
		system left right
	`)
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("crossed handshake must deadlock")
	}
	// The generalized engine agrees.
	rep, err := verify.CheckDeadlock(net, verify.Options{Engine: verify.GPO})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlock {
		t.Error("GPO missed the crossed-handshake deadlock")
	}
}

func TestChoiceCreatesConflict(t *testing.T) {
	net := MustCompile(`
		proc p = ( a ; x + b ; y )
		system p
	`)
	a, _ := net.TransByName("p.a")
	b, _ := net.TransByName("p.b")
	if !net.Conflict(a, b) {
		t.Error("choice branches must conflict on the shared entry place")
	}
	count, err := reach.CountStates(net)
	if err != nil {
		t.Fatal(err)
	}
	// start, after-a, after-b, end: exactly 4 markings.
	if count != 4 {
		t.Errorf("states=%d want 4", count)
	}
}

func TestParallelInterleaves(t *testing.T) {
	net := MustCompile(`
		proc p = ( a ; b || c ; d )
		system p
	`)
	count, err := reach.CountStates(net)
	if err != nil {
		t.Fatal(err)
	}
	// start, fork, 3x3 interleavings, join-done: 1 + 9 + 1 = 11.
	if count != 11 {
		t.Errorf("states=%d want 11", count)
	}
}

func TestMultiplePartnersConflict(t *testing.T) {
	// One sender, two possible receivers: two rendezvous transitions in
	// conflict — the pattern the generalized analysis collapses.
	net := MustCompile(`
		proc server  = *( !job )
		proc workerA = *( ?job ; workA )
		proc workerB = *( ?job ; workB )
		system server workerA workerB
	`)
	t1, ok1 := net.TransByName("job:server>workerA")
	t2, ok2 := net.TransByName("job:server>workerB")
	if !ok1 || !ok2 {
		t.Fatal("missing rendezvous pair transitions")
	}
	if !net.Conflict(t1, t2) {
		t.Error("the two rendezvous alternatives must conflict")
	}
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Error("server/worker farm must not deadlock")
	}
}

func TestDuplicateInstance(t *testing.T) {
	net := MustCompile(`
		proc worker = *( ?job ; work )
		proc boss   = *( !job )
		system boss worker worker
	`)
	if _, ok := net.TransByName("job:boss>worker#2"); !ok {
		t.Error("second worker instance must get its own rendezvous")
	}
	res, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Error("boss/worker/worker must not deadlock")
	}
}

// TestPhilosophersInProcLanguage models dining philosophers in the
// process language and checks the deadlock is found by every engine.
func TestPhilosophersInProcLanguage(t *testing.T) {
	src := `
		proc fork0 = *( ( ?take0_l ; ?put0_l + ?take0_r ; ?put0_r ) )
		proc fork1 = *( ( ?take1_l ; ?put1_l + ?take1_r ; ?put1_r ) )
		proc phil0 = *( !take0_l ; !take1_r ; eat0 ; !put0_l ; !put1_r )
		proc phil1 = *( !take1_l ; !take0_r ; eat1 ; !put1_l ; !put0_r )
		system fork0 fork1 phil0 phil1
	`
	net := MustCompile(src)
	full, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Deadlock {
		t.Fatal("2-philosopher left-first protocol must deadlock")
	}
	for _, eng := range []verify.Engine{verify.PartialOrder, verify.Symbolic, verify.GPO} {
		rep, err := verify.CheckDeadlock(net, verify.Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Deadlock {
			t.Errorf("engine %v missed the deadlock", eng)
		}
	}
}

// TestCompiledNetsAreSafe explores a battery of specs exhaustively;
// reach.Explore errors if 1-boundedness is ever violated.
func TestCompiledNetsAreSafe(t *testing.T) {
	specs := []string{
		`proc p = a system p`,
		`proc p = *( ( a + b ; ( c || d ) ) ) system p`,
		`proc p = ( *( a ) + b ) system p`,
		`proc p = ( ( a ; !x || b ; ?x ) ) system p`, // self-sync impossible: x blocks
		`proc p = !x proc q = ?x system p q`,
		`proc p = *( !x ) proc q = *( ?x ) proc r = *( ?x ) system p q r`,
		`proc p = skip ; a system p`,
	}
	for i, src := range specs {
		src = strings.ReplaceAll(src, " system", "\nsystem")
		net := MustCompile(src)
		if _, err := reach.Explore(net, reach.Options{MaxStates: 100000}); err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}
