package proc

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a specification in the proc language.
func Parse(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec := &Spec{Procs: make(map[string]*Process)}
	for !p.eof() {
		switch {
		case p.accept("proc"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, dup := spec.Procs[name]; dup {
				return nil, fmt.Errorf("proc: duplicate process %q", name)
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			body, err := p.expr()
			if err != nil {
				return nil, err
			}
			spec.Procs[name] = &Process{Name: name, Body: body}
		case p.accept("system"):
			for !p.eof() {
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				spec.System = append(spec.System, name)
			}
			if len(spec.System) == 0 {
				return nil, fmt.Errorf("proc: empty system line")
			}
		default:
			return nil, fmt.Errorf("proc: unexpected token %q (want 'proc' or 'system')", p.peek())
		}
	}
	if len(spec.System) == 0 {
		return nil, fmt.Errorf("proc: missing 'system' line")
	}
	for _, name := range spec.System {
		if _, ok := spec.Procs[name]; !ok {
			return nil, fmt.Errorf("proc: system names undefined process %q", name)
		}
	}
	return spec, nil
}

// lex splits the source into tokens. '#' starts a line comment.
func lex(src string) ([]string, error) {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		i := 0
		for i < len(line) {
			c := rune(line[i])
			switch {
			case unicode.IsSpace(c):
				i++
			case strings.ContainsRune("();=!?*+", c):
				toks = append(toks, string(c))
				i++
			case c == '|':
				if i+1 < len(line) && line[i+1] == '|' {
					toks = append(toks, "||")
					i += 2
				} else {
					return nil, fmt.Errorf("proc: single '|' (want '||')")
				}
			case unicode.IsLetter(c) || c == '_':
				j := i
				for j < len(line) && (unicode.IsLetter(rune(line[j])) ||
					unicode.IsDigit(rune(line[j])) || line[j] == '_') {
					j++
				}
				toks = append(toks, line[i:j])
				i = j
			default:
				return nil, fmt.Errorf("proc: unexpected character %q", c)
			}
		}
	}
	return toks, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

func (p *parser) accept(tok string) bool {
	if !p.eof() && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.accept(tok) {
		return fmt.Errorf("proc: expected %q, found %q", tok, p.peek())
	}
	return nil
}

var keywords = map[string]bool{
	"proc": true, "system": true, "skip": true,
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if p.eof() || keywords[t] || strings.ContainsAny(t, "();=!?*+|") {
		return "", fmt.Errorf("proc: expected identifier, found %q", t)
	}
	p.pos++
	return t, nil
}

// expr parses a sequence.
func (p *parser) expr() (Expr, error) {
	var steps []Expr
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		steps = append(steps, t)
		if !p.accept(";") {
			break
		}
	}
	if len(steps) == 1 {
		return steps[0], nil
	}
	return Seq{Steps: steps}, nil
}

// term parses one unit of a sequence.
func (p *parser) term() (Expr, error) {
	switch {
	case p.accept("skip"):
		return Skip{}, nil
	case p.accept("!"):
		ch, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Send{Chan: ch}, nil
	case p.accept("?"):
		ch, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Recv{Chan: ch}, nil
	case p.accept("*"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Loop{Body: body}, nil
	case p.accept("("):
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch {
		case p.accept("+"):
			branches := []Expr{first}
			for {
				b, err := p.expr()
				if err != nil {
					return nil, err
				}
				branches = append(branches, b)
				if !p.accept("+") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return Choice{Branches: branches}, nil
		case p.accept("||"):
			branches := []Expr{first}
			for {
				b, err := p.expr()
				if err != nil {
					return nil, err
				}
				branches = append(branches, b)
				if !p.accept("||") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return Par{Branches: branches}, nil
		default:
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return first, nil
		}
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Action{Name: name}, nil
	}
}
