package proc

import (
	"fmt"

	"repro/internal/petri"
)

// Compile translates a parsed specification into a safe Petri net.
//
// Each process instance becomes a token-flow subnet holding exactly one
// control token per parallel branch (so the net is safe by construction).
// Choices share their entry place, turning the branches' first transitions
// into a structural conflict. Every send !c is fused with every receive ?c
// of the same channel in the other processes into one rendezvous
// transition per pair; a send (or receive) with several possible partners
// therefore becomes a conflict, and one with no partner blocks forever.
func Compile(spec *Spec) (*petri.Net, error) {
	c := &compiler{
		b:     petri.NewBuilder("system"),
		sends: make(map[string][]occurrence),
		recvs: make(map[string][]occurrence),
		used:  make(map[string]bool),
	}

	instSeen := make(map[string]int)
	for _, name := range spec.System {
		inst := name
		instSeen[name]++
		if instSeen[name] > 1 {
			inst = fmt.Sprintf("%s#%d", name, instSeen[name])
		}
		p := spec.Procs[name]
		entry := c.place(inst + ".start")
		exit := c.place(inst + ".end")
		c.b.Mark(entry)
		c.inst = inst
		if err := c.compile(p.Body, entry, exit, false); err != nil {
			return nil, err
		}
	}

	// Fuse channel partners across processes.
	for ch, ss := range c.sends {
		rs := c.recvs[ch]
		for _, s := range ss {
			for _, r := range rs {
				if s.inst == r.inst {
					continue // rendezvous with oneself is impossible
				}
				name := c.unique(fmt.Sprintf("%s:%s>%s", ch, s.inst, r.inst))
				c.b.TransArcs(name,
					append(append([]petri.Place{}, s.pre...), r.pre...),
					append(append([]petri.Place{}, s.post...), r.post...))
			}
		}
	}

	return c.b.Build()
}

// MustCompile parses and compiles, panicking on error; for examples and
// tests with static specifications.
func MustCompile(src string) *petri.Net {
	spec, err := Parse(src)
	if err != nil {
		panic(err)
	}
	net, err := Compile(spec)
	if err != nil {
		panic(err)
	}
	return net
}

// occurrence is one !c or ?c site: the control places it consumes and
// produces.
type occurrence struct {
	inst      string
	pre, post []petri.Place
}

type compiler struct {
	b     *petri.Builder
	inst  string
	n     int
	sends map[string][]occurrence
	recvs map[string][]occurrence
	used  map[string]bool
}

func (c *compiler) place(name string) petri.Place {
	return c.b.Place(c.unique(name))
}

func (c *compiler) mid() petri.Place {
	c.n++
	return c.place(fmt.Sprintf("%s.s%d", c.inst, c.n))
}

func (c *compiler) unique(name string) string {
	if !c.used[name] {
		c.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s#%d", name, i)
		if !c.used[cand] {
			c.used[cand] = true
			return cand
		}
	}
}

// compile wires the expression between the entry and exit places.
// sharedEntry reports that other behavior also consumes from entry (the
// expression is a choice branch), which loops must not cycle back into.
func (c *compiler) compile(e Expr, entry, exit petri.Place, sharedEntry bool) error {
	switch e := e.(type) {
	case Action:
		c.b.TransArcs(c.unique(c.inst+"."+e.Name),
			[]petri.Place{entry}, []petri.Place{exit})
		return nil
	case Skip:
		c.b.TransArcs(c.unique(c.inst+".tau"),
			[]petri.Place{entry}, []petri.Place{exit})
		return nil
	case Send:
		c.sends[e.Chan] = append(c.sends[e.Chan], occurrence{
			inst: c.inst,
			pre:  []petri.Place{entry},
			post: []petri.Place{exit},
		})
		return nil
	case Recv:
		c.recvs[e.Chan] = append(c.recvs[e.Chan], occurrence{
			inst: c.inst,
			pre:  []petri.Place{entry},
			post: []petri.Place{exit},
		})
		return nil
	case Seq:
		cur := entry
		shared := sharedEntry
		for i, step := range e.Steps {
			next := exit
			if i < len(e.Steps)-1 {
				next = c.mid()
			}
			if err := c.compile(step, cur, next, shared); err != nil {
				return err
			}
			cur = next
			shared = false // intermediate places have a single consumer path
		}
		return nil
	case Choice:
		if len(e.Branches) < 2 {
			return fmt.Errorf("proc: choice needs at least 2 branches")
		}
		for _, br := range e.Branches {
			if err := c.compile(br, entry, exit, true); err != nil {
				return err
			}
		}
		return nil
	case Par:
		if len(e.Branches) < 2 {
			return fmt.Errorf("proc: parallel needs at least 2 branches")
		}
		var starts, ends []petri.Place
		for range e.Branches {
			starts = append(starts, c.mid())
			ends = append(ends, c.mid())
		}
		c.b.TransArcs(c.unique(c.inst+".fork"), []petri.Place{entry}, starts)
		c.b.TransArcs(c.unique(c.inst+".join"), ends, []petri.Place{exit})
		for i, br := range e.Branches {
			if err := c.compile(br, starts[i], ends[i], false); err != nil {
				return err
			}
		}
		return nil
	case Loop:
		head := entry
		if sharedEntry {
			// Cycling back into a shared entry would re-offer the other
			// choice branches on every iteration; detour through a fresh
			// head place instead.
			head = c.mid()
			c.b.TransArcs(c.unique(c.inst+".enter"),
				[]petri.Place{entry}, []petri.Place{head})
		}
		return c.compile(e.Body, head, head, false)
	default:
		return fmt.Errorf("proc: unknown expression %T", e)
	}
}
