// Package proc compiles a small process-algebra specification language
// into safe Petri nets — the front-end pipeline of the paper's reference
// [16] ("Derivation of Formal Representations from Process-based
// Specification and Implementation Models", ISSS 1997), which is how the
// paper's real-life examples (e.g. the QAM modem) were modeled.
//
// The language:
//
//	proc producer = *( make ; !data )
//	proc consumer = *( ?data ; use )
//	system producer consumer
//
// Grammar (informal):
//
//	spec    := { "proc" NAME "=" expr } "system" NAME { NAME }
//	expr    := seq
//	seq     := term { ";" term }
//	term    := NAME                  -- local action
//	         | "!" NAME              -- send on channel (rendezvous)
//	         | "?" NAME              -- receive on channel
//	         | "(" expr { "+" expr } ")"   -- choice
//	         | "(" expr { "||" expr } ")"  -- parallel fork/join
//	         | "*" "(" expr ")"      -- infinite loop
//	         | "skip"                -- no-op
//
// Each process becomes a token-flow subnet with one entry place; "system"
// composes the named processes in parallel and fuses every send !c with
// every receive ?c of the same channel across processes into rendezvous
// transitions (one per send/receive pair — multiple partners create
// conflicts, which is exactly what the generalized analysis is good at).
package proc

// Expr is a node of the process-expression tree.
type Expr interface{ isExpr() }

// Action is a local (non-synchronizing) action.
type Action struct{ Name string }

// Send is a rendezvous send on a channel.
type Send struct{ Chan string }

// Recv is a rendezvous receive on a channel.
type Recv struct{ Chan string }

// Skip is the empty behavior.
type Skip struct{}

// Seq is sequential composition e1 ; e2 ; …
type Seq struct{ Steps []Expr }

// Choice is nondeterministic choice (e1 + e2 + …): a conflict place.
type Choice struct{ Branches []Expr }

// Par is parallel fork/join (e1 || e2 || …) inside one process.
type Par struct{ Branches []Expr }

// Loop repeats its body forever.
type Loop struct{ Body Expr }

func (Action) isExpr() {}
func (Send) isExpr()   {}
func (Recv) isExpr()   {}
func (Skip) isExpr()   {}
func (Seq) isExpr()    {}
func (Choice) isExpr() {}
func (Par) isExpr()    {}
func (Loop) isExpr()   {}

// Process is a named process definition.
type Process struct {
	Name string
	Body Expr
}

// Spec is a parsed specification: process definitions plus the system
// composition line.
type Spec struct {
	Procs  map[string]*Process
	System []string // names of the processes composed in parallel
}
